"""Parallel size-constrained label propagation (paper Sections IV-A/IV-B).

Each PE runs the sequential scan over its *local* nodes; ghost labels are
refreshed through the buffered phase exchange, so within a phase a PE
works with ghost information that is one phase stale — exactly the
paper's communication/computation overlap scheme.

Block-weight bookkeeping follows the paper's two regimes:

* **coarsening** (``mode='cluster'``): the number of blocks starts at
  ``n``, so no PE can hold global weights.  Every PE tracks only a local
  *view*: the weights of the blocks its local and ghost nodes belong to,
  updated optimistically on every local move and on every received ghost
  update.  The constraint is soft, so approximate weights are fine.
* **refinement** (``mode='refine'``): only ``k`` blocks, tight
  constraint.  Exact global block weights are computed with an allreduce
  at every phase boundary (the ParMetis-style scheme the paper adopts).
  Within a phase each PE works against *per-PE budget shares*: it may add
  at most ``(Lmax - w(b)) / p`` weight to block ``b`` and evict at most
  ``(w(b) - Lmax) / p`` from an overloaded block.  The 1/p shares make
  the phase outcome safe by construction — even if every PE exhausts its
  budget, the block lands exactly at the bound — which is what keeps the
  tight constraint stable when many PEs chase the same imbalance signal
  (the failure mode the paper attributes to parallel Jostle).

Degree-based node ordering is parallelised exactly as in the paper: each
PE orders its *local* nodes by local degree; refinement uses random order.
"""

from __future__ import annotations

import random as _pyrandom

import numpy as np

from .comm import SimComm
from .dgraph import DistGraph

__all__ = ["parallel_label_propagation", "exact_block_weights", "distributed_edge_cut"]


def exact_block_weights(
    dgraph: DistGraph, comm: SimComm, labels: np.ndarray, k: int
) -> np.ndarray:
    """Exact global block weights via one allreduce (refinement regime)."""
    local = np.bincount(
        labels[: dgraph.n_local], weights=dgraph.vwgt, minlength=k
    ).astype(np.int64)
    return comm.allreduce(local)


def distributed_edge_cut(dgraph: DistGraph, comm: SimComm, labels: np.ndarray) -> int:
    """Global edge cut of a (local + ghost) label array, via allreduce."""
    src_labels = labels[dgraph.arc_sources()]
    dst_labels = labels[dgraph.adjncy]
    local_cut = int(dgraph.adjwgt[src_labels != dst_labels].sum())
    # Cross-PE cut arcs are counted once per side, local-local arcs twice;
    # summing over all PEs double-counts every cut edge exactly twice.
    return int(comm.allreduce(local_cut)) // 2


def _exchange_interface_labels(
    dgraph: DistGraph,
    comm: SimComm,
    label_list: list[int],
    changed: list[int],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Ship changed interface labels to adjacent PEs; apply received updates.

    Returns the list of (ghost indices, new labels) applied, so callers
    can fold them into whatever weight view they maintain.
    """
    n_local = dgraph.n_local
    changed_arr = np.asarray(changed, dtype=np.int64)
    per_dest: list[object] = [None] * comm.size
    for q, nodes in zip(dgraph.send_ranks.tolist(), dgraph.send_nodes):
        touched = nodes[np.isin(nodes, changed_arr)] if changed_arr.size else nodes[:0]
        globals_ = touched + dgraph.first
        values = np.asarray([label_list[v] for v in touched.tolist()], dtype=np.int64)
        per_dest[q] = (globals_, values)
    received = comm.alltoall(per_dest)
    applied: list[tuple[np.ndarray, np.ndarray]] = []
    for payload in received:
        if payload is None:
            continue
        globals_, values = payload
        if globals_.size == 0:
            continue
        ghost_idx = np.searchsorted(dgraph.ghost_global, globals_) + n_local
        applied.append((ghost_idx, values))
    return applied


def parallel_label_propagation(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    max_block_weight: int,
    iterations: int,
    mode: str = "cluster",
    k: int | None = None,
    constraint: np.ndarray | None = None,
) -> np.ndarray:
    """Run parallel SCLP; returns the updated length-``n_total`` label array.

    Collective over ``comm``.  ``labels`` must contain consistent ghost
    entries on entry (e.g. global node ids for clustering, or a projected
    partition refreshed by a halo exchange).
    """
    if mode not in ("cluster", "refine"):
        raise ValueError(f"unknown mode {mode!r}")
    refine = mode == "refine"
    if refine and k is None:
        raise ValueError("refinement mode requires k")

    labels = np.asarray(labels, dtype=np.int64).copy()
    n_local = dgraph.n_local
    bound = int(max_block_weight)

    # Python-list mirrors for the scan (list indexing beats numpy scalars).
    xadj = dgraph.xadj.tolist()
    adjncy = dgraph.adjncy.tolist()
    adjwgt = dgraph.adjwgt.tolist()
    label_list = labels.tolist()
    constraint_list = None if constraint is None else np.asarray(constraint).tolist()
    interface = dgraph.interface_mask()
    tie_rng = _pyrandom.Random(int(comm.rng.integers(0, 2**63 - 1)))

    # Node weights including ghosts (one halo exchange).
    ghost_vwgt = np.zeros(dgraph.n_total, dtype=np.int64)
    ghost_vwgt[:n_local] = dgraph.vwgt
    dgraph.halo_exchange(comm, ghost_vwgt)
    vwgt_all = ghost_vwgt.tolist()

    if refine:
        labels = _refine_phases(
            dgraph, comm, label_list, xadj, adjncy, adjwgt, vwgt_all,
            constraint_list, interface, tie_rng, bound, int(k), iterations,
        )
        return labels

    # ------------------------------------------------------------------
    # Clustering regime: localized weight view (Section IV-B, coarsening)
    # ------------------------------------------------------------------
    weight_view: dict[int, int] = {}
    for lid in range(dgraph.n_total):
        lab = label_list[lid]
        weight_view[lab] = weight_view.get(lab, 0) + vwgt_all[lid]

    degree_order = np.argsort(dgraph.degrees, kind="stable").tolist()
    for _phase in range(max(0, iterations)):
        changed: list[int] = []
        arcs_scanned = 0
        for v in degree_order:
            begin, end = xadj[v], xadj[v + 1]
            if begin == end:
                continue
            arcs_scanned += end - begin
            own = label_list[v]
            my_constraint = constraint_list[v] if constraint_list is not None else None

            conn: dict[int, int] = {}
            for idx in range(begin, end):
                u = adjncy[idx]
                if my_constraint is not None and constraint_list[u] != my_constraint:
                    continue
                lab = label_list[u]
                conn[lab] = conn.get(lab, 0) + adjwgt[idx]
            conn.setdefault(own, 0)

            c_v = vwgt_all[v]
            best_weight = -1
            best_labels: list[int] = []
            for lab, strength in conn.items():
                if lab != own and weight_view.get(lab, 0) + c_v > bound:
                    continue
                if strength > best_weight:
                    best_weight = strength
                    best_labels = [lab]
                elif strength == best_weight:
                    best_labels.append(lab)
            if not best_labels:
                continue
            target = (
                best_labels[0]
                if len(best_labels) == 1
                else best_labels[tie_rng.randrange(len(best_labels))]
            )
            if target != own:
                weight_view[own] = weight_view.get(own, 0) - c_v
                weight_view[target] = weight_view.get(target, 0) + c_v
                label_list[v] = target
                if interface[v]:
                    changed.append(v)
        comm.work(arcs_scanned)

        applied = _exchange_interface_labels(dgraph, comm, label_list, changed)
        for ghost_idx, values in applied:
            for gi, new_lab in zip(ghost_idx.tolist(), values.tolist()):
                old = label_list[gi]
                if old == new_lab:
                    continue
                w = vwgt_all[gi]
                weight_view[old] = weight_view.get(old, 0) - w
                weight_view[new_lab] = weight_view.get(new_lab, 0) + w
                label_list[gi] = new_lab

        if int(comm.allreduce(len(changed))) == 0:
            break

    return np.asarray(label_list, dtype=np.int64)


def _refine_phases(
    dgraph: DistGraph,
    comm: SimComm,
    label_list: list[int],
    xadj: list[int],
    adjncy: list[int],
    adjwgt: list[int],
    vwgt_all: list[int],
    constraint_list: list[int] | None,
    interface: np.ndarray,
    tie_rng: "_pyrandom.Random",
    bound: int,
    k: int,
    iterations: int,
) -> np.ndarray:
    """Refinement regime: exact weights per phase, per-PE budget shares."""
    n_local = dgraph.n_local
    size = comm.size

    exact = exact_block_weights(
        dgraph, comm, np.asarray(label_list, dtype=np.int64), k
    ).tolist()

    for _phase in range(max(0, iterations)):
        # Per-PE budgets for this phase (see module docstring).
        inflow_budget = [max(0.0, (bound - exact[b]) / size) for b in range(k)]
        evict_budget = [max(0.0, (exact[b] - bound) / size) for b in range(k)]
        local_net = [0] * k  # this PE's net weight added to each block
        local_out = [0] * k  # weight this PE evicted from overloaded blocks

        changed: list[int] = []
        arcs_scanned = 0
        for v in comm.rng.permutation(n_local).tolist():
            begin, end = xadj[v], xadj[v + 1]
            own = label_list[v]
            if begin == end:
                # Isolated node: may still repair balance (see the
                # sequential engine) within this PE's eviction budget.
                c_v = vwgt_all[v]
                if exact[own] > bound and local_out[own] < evict_budget[own]:
                    candidates = [
                        b for b in range(k)
                        if b != own and local_net[b] + c_v <= inflow_budget[b]
                    ]
                    if candidates:
                        target = min(candidates, key=lambda b: exact[b] + local_net[b])
                        local_net[own] -= c_v
                        local_net[target] += c_v
                        local_out[own] += c_v
                        label_list[v] = target
                        if interface[v]:
                            changed.append(v)
                continue
            arcs_scanned += end - begin
            my_constraint = constraint_list[v] if constraint_list is not None else None

            conn: dict[int, int] = {}
            for idx in range(begin, end):
                u = adjncy[idx]
                if my_constraint is not None and constraint_list[u] != my_constraint:
                    continue
                lab = label_list[u]
                conn[lab] = conn.get(lab, 0) + adjwgt[idx]

            c_v = vwgt_all[v]
            evicting = exact[own] > bound and local_out[own] < evict_budget[own]
            if not evicting:
                conn.setdefault(own, 0)

            best_weight = -1
            best_labels: list[int] = []
            for lab, strength in conn.items():
                if lab == own:
                    if evicting:
                        continue
                elif local_net[lab] + c_v > inflow_budget[lab]:
                    continue  # this PE's share of block `lab` is used up
                if strength > best_weight:
                    best_weight = strength
                    best_labels = [lab]
                elif strength == best_weight:
                    best_labels.append(lab)
            if not best_labels:
                continue
            target = (
                best_labels[0]
                if len(best_labels) == 1
                else best_labels[tie_rng.randrange(len(best_labels))]
            )
            if target != own:
                local_net[own] -= c_v
                local_net[target] += c_v
                if evicting:
                    local_out[own] += c_v
                label_list[v] = target
                if interface[v]:
                    changed.append(v)
        comm.work(arcs_scanned)

        applied = _exchange_interface_labels(dgraph, comm, label_list, changed)
        for ghost_idx, values in applied:
            for gi, new_lab in zip(ghost_idx.tolist(), values.tolist()):
                label_list[gi] = new_lab

        # Restore exact weights with one allreduce (Section IV-B).
        exact = exact_block_weights(
            dgraph, comm, np.asarray(label_list, dtype=np.int64), k
        ).tolist()

        if int(comm.allreduce(len(changed))) == 0:
            break

    return np.asarray(label_list, dtype=np.int64)
