"""Parallel size-constrained label propagation (paper Sections IV-A/IV-B).

Each PE runs the shared SCLP driver (:func:`repro.engine.sclp.run_sclp`)
over its *local* nodes through the
:class:`~repro.engine.backend.SpmdBackend`; ghost labels are refreshed
through the buffered phase exchange, so within a phase a PE works with
ghost information that is one phase stale — exactly the paper's
communication/computation overlap scheme.

Block-weight bookkeeping follows the paper's two regimes:

* **coarsening** (``mode='cluster'``): the number of blocks starts at
  ``n``, so no PE can hold global weights.  Every PE tracks only a local
  *view*: the weights of the blocks its local and ghost nodes belong to,
  updated optimistically on every local move and on every received ghost
  update.  The constraint is soft, so approximate weights are fine.
* **refinement** (``mode='refine'``): only ``k`` blocks, tight
  constraint.  Exact global block weights are computed with an allreduce
  at every phase boundary (the ParMetis-style scheme the paper adopts).
  Within a phase each PE works against *per-PE budget shares*: it may add
  at most ``(Lmax - w(b)) / p`` weight to block ``b`` and evict at most
  ``(w(b) - Lmax) / p`` from an overloaded block.  The 1/p shares make
  the phase outcome safe by construction — even if every PE exhausts its
  budget, the block lands exactly at the bound — which is what keeps the
  tight constraint stable when many PEs chase the same imbalance signal
  (the failure mode the paper attributes to parallel Jostle).

Degree-based node ordering is parallelised exactly as in the paper: each
PE orders its *local* nodes by local degree; refinement uses random order.

Two engines drive the per-PE scan (selected by ``chunk_size``, see
:mod:`repro.engine.kernels`): the legacy node-at-a-time Python scan
(``chunk_size=0``), and the vectorised chunked kernels, which evaluate a
chunk of nodes against a chunk-start snapshot of labels and weights and
apply the bookkeeping between chunks.  ``chunk_size=1`` is bit-identical
to the scan; larger chunks add phase-internal staleness of the same kind
the ghost scheme already tolerates across PEs.

Orthogonally, the chunked kernels run one of three *sweeps* per phase
(``engine``, see :func:`repro.engine.kernels.resolve_engine`): the
``full`` sweep scans every local node every phase, the ``frontier``
engine rescans only the active set — last phase's movers and their
local neighbours, local neighbours of ghosts whose labels changed in
the exchange, nodes flagged *risky* or capped at their last scan, and
(refine mode) members of over-budget blocks — and the default
``adaptive`` engine starts in the full sweep and switches to frontier
dispatch once the observed active fraction collapses (an allreduced,
hence rank-uniform, decision; see :mod:`repro.engine.autotune`).  With
the hash tie-break all of these are label-identical per iteration
(test-enforced); they only differ in throughput, because converged
regions drop out of the scan.  ``comm.work`` is charged for the arcs
actually scanned, so the frontier sweeps' simulated times drop
alongside wall-clock.

The phase-boundary interface exchange is a *delta* exchange by default:
each PE ships ``(interface position: int32, new label: int64)`` pairs
for the labels that changed, falling back to a dense
8-bytes-per-interface-node payload per destination whenever the delta
encoding would be larger (first iterations, where most labels change).
``CommStats`` accounts the encoded payloads, so simulated
communication time shrinks as LP converges.
"""

from __future__ import annotations

import numpy as np

from ..engine.kernels import (
    ADAPTIVE_ENGINE,
    FRONTIER_ENGINE,
    FULL_ENGINE,
    resolve_chunk_size,
    resolve_engine,
)
from ..engine.backend import SpmdBackend, exchange_interface_labels, make_dist_backend
from ..engine.sclp import run_sclp
from .comm import SimComm
from .dgraph import DistGraph

__all__ = ["parallel_label_propagation", "exact_block_weights", "distributed_edge_cut"]


def exact_block_weights(
    dgraph: DistGraph, comm: SimComm, labels: np.ndarray, k: int
) -> np.ndarray:
    """Exact global block weights via one allreduce (refinement regime)."""
    local = np.bincount(
        labels[: dgraph.n_local], weights=dgraph.vwgt, minlength=k
    ).astype(np.int64)
    return comm.allreduce(local)


def distributed_edge_cut(dgraph: DistGraph, comm: SimComm, labels: np.ndarray) -> int:
    """Global edge cut of a (local + ghost) label array, via allreduce."""
    src_labels = labels[dgraph.arc_sources()]
    dst_labels = labels[dgraph.adjncy]
    local_cut = int(dgraph.adjwgt[src_labels != dst_labels].sum())
    # Cross-PE cut arcs are counted once per side, local-local arcs twice;
    # summing over all PEs double-counts every cut edge exactly twice.
    return int(comm.allreduce(local_cut)) // 2


# Kept under the historical name as well: the interface-exchange tests
# exercise the wire protocol through this module.
_exchange_interface_labels = exchange_interface_labels


def parallel_label_propagation(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    max_block_weight: int,
    iterations: int,
    mode: str = "cluster",
    k: int | None = None,
    constraint: np.ndarray | None = None,
    chunk_size: int | None = None,
    engine: str | None = None,
    delta_exchange: bool = True,
) -> np.ndarray:
    """Run parallel SCLP; returns the updated length-``n_total`` label array.

    Collective over ``comm``.  ``labels`` must contain consistent ghost
    entries on entry (e.g. global node ids for clustering, or a projected
    partition refreshed by a halo exchange).  ``chunk_size`` selects the
    scan engine (0), the bit-identical chunked kernels (1), or throughput
    chunking (>1); ``None`` defers to ``REPRO_LP_CHUNK`` and the default.
    ``engine`` selects the sweep for the chunked kernels — ``full``,
    the ``frontier`` active-set engine, or the default ``adaptive``
    engine that switches between the two at runtime (``None`` defers to
    ``REPRO_LP_ENGINE`` then the legacy ``REPRO_LP_FRONTIER`` for
    throughput chunking; the bit-exact ``chunk_size <= 1`` modes always
    run ``full`` unless an explicit static ``engine=`` says otherwise —
    the environment cannot silently change bit-exact results; see
    :func:`repro.engine.kernels.resolve_engine` for the one documented
    precedence order).  ``delta_exchange`` selects the sparse
    interface exchange (the default) over the dense per-destination
    payloads.
    """
    if mode not in ("cluster", "refine"):
        raise ValueError(f"unknown mode {mode!r}")
    refine = mode == "refine"
    if refine and k is None:
        raise ValueError("refinement mode requires k")
    chunk = resolve_chunk_size(chunk_size)
    resolved_engine = resolve_engine(
        engine,
        default=ADAPTIVE_ENGINE if chunk > 1 else FULL_ENGINE,
        chunk=chunk,
    )
    if chunk == 0 and resolved_engine == FRONTIER_ENGINE:
        if engine is not None:
            raise ValueError(
                "the frontier engine requires the chunked kernels "
                "(chunk_size >= 1); chunk_size=0 selects the scan engine"
            )
        resolved_engine = FULL_ENGINE
    return run_sclp(
        make_dist_backend(dgraph, comm),
        labels,
        int(max_block_weight),
        iterations,
        refine=refine,
        shares=refine,
        k=None if k is None else int(k),
        ordering="random" if refine else "degree",
        constraint=constraint,
        chunk=chunk,
        engine=resolved_engine,
        tie_seed=int(comm.rng.integers(0, 2**63 - 1)),
        delta=delta_exchange,
    )
