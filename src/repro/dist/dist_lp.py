"""Parallel size-constrained label propagation (paper Sections IV-A/IV-B).

Each PE runs the sequential scan over its *local* nodes; ghost labels are
refreshed through the buffered phase exchange, so within a phase a PE
works with ghost information that is one phase stale — exactly the
paper's communication/computation overlap scheme.

Block-weight bookkeeping follows the paper's two regimes:

* **coarsening** (``mode='cluster'``): the number of blocks starts at
  ``n``, so no PE can hold global weights.  Every PE tracks only a local
  *view*: the weights of the blocks its local and ghost nodes belong to,
  updated optimistically on every local move and on every received ghost
  update.  The constraint is soft, so approximate weights are fine.
* **refinement** (``mode='refine'``): only ``k`` blocks, tight
  constraint.  Exact global block weights are computed with an allreduce
  at every phase boundary (the ParMetis-style scheme the paper adopts).
  Within a phase each PE works against *per-PE budget shares*: it may add
  at most ``(Lmax - w(b)) / p`` weight to block ``b`` and evict at most
  ``(w(b) - Lmax) / p`` from an overloaded block.  The 1/p shares make
  the phase outcome safe by construction — even if every PE exhausts its
  budget, the block lands exactly at the bound — which is what keeps the
  tight constraint stable when many PEs chase the same imbalance signal
  (the failure mode the paper attributes to parallel Jostle).

Degree-based node ordering is parallelised exactly as in the paper: each
PE orders its *local* nodes by local degree; refinement uses random order.

Two engines drive the per-PE scan (selected by ``chunk_size``, see
:mod:`repro.core.lp_kernels`): the legacy node-at-a-time Python scan
(``chunk_size=0``), and the vectorised chunked kernels, which evaluate a
chunk of nodes against a chunk-start snapshot of labels and weights and
apply the bookkeeping between chunks.  ``chunk_size=1`` is bit-identical
to the scan; larger chunks add phase-internal staleness of the same kind
the ghost scheme already tolerates across PEs.

Orthogonally, the chunked kernels run in one of two *sweep* modes
(``engine``, see :func:`repro.core.lp_kernels.resolve_engine`): the
``full`` sweep scans every local node every phase, while the default
``frontier`` engine rescans only the active set — last phase's movers
and their local neighbours, local neighbours of ghosts whose labels
changed in the exchange, nodes flagged *risky* or capped at their last
scan, and (refine mode) members of over-budget blocks.  With the hash
tie-break this is label-identical to the full sweep per iteration
(test-enforced); it is just faster, because converged regions drop out
of the scan.  ``comm.work`` is charged for the arcs actually scanned,
so the frontier engine's simulated times drop alongside wall-clock.

The phase-boundary interface exchange is a *delta* exchange by default:
each PE ships ``(interface position: int32, new label: int64)`` pairs
for the labels that changed, falling back to a dense
8-bytes-per-interface-node payload per destination whenever the delta
encoding would be larger (first iterations, where most labels change).
``CommStats`` accounts the encoded payloads, so simulated
communication time shrinks as LP converges.
"""

from __future__ import annotations

import random as _pyrandom

import numpy as np

from ..core.lp_kernels import (
    FRONTIER_ENGINE,
    FRONTIER_FULL_SWEEP_FRACTION,
    FULL_ENGINE,
    aggregate_candidates,
    candidate_tie_hash,
    capped_inflow_mask,
    chunk_ranges,
    effective_chunk,
    gather_neighbors,
    make_tie_breaker,
    pick_targets,
    pick_targets_hashed,
    plan_chunk,
    resolve_chunk_size,
    resolve_engine,
)
from ..obsv.tracer import TRACER
from .comm import SimComm
from .dgraph import DistGraph

__all__ = ["parallel_label_propagation", "exact_block_weights", "distributed_edge_cut"]


def exact_block_weights(
    dgraph: DistGraph, comm: SimComm, labels: np.ndarray, k: int
) -> np.ndarray:
    """Exact global block weights via one allreduce (refinement regime)."""
    local = np.bincount(
        labels[: dgraph.n_local], weights=dgraph.vwgt, minlength=k
    ).astype(np.int64)
    return comm.allreduce(local)


def distributed_edge_cut(dgraph: DistGraph, comm: SimComm, labels: np.ndarray) -> int:
    """Global edge cut of a (local + ghost) label array, via allreduce."""
    src_labels = labels[dgraph.arc_sources()]
    dst_labels = labels[dgraph.adjncy]
    local_cut = int(dgraph.adjwgt[src_labels != dst_labels].sum())
    # Cross-PE cut arcs are counted once per side, local-local arcs twice;
    # summing over all PEs double-counts every cut edge exactly twice.
    return int(comm.allreduce(local_cut)) // 2


def _exchange_interface_labels(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    changed_mask: np.ndarray,
    delta: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Ship changed interface labels to adjacent PEs; validate and locate.

    Returns ``(ghost_idx, values)``: the local ghost slots the received
    updates belong to and their new labels, so callers can fold them into
    whatever weight view they maintain.

    Both wire encodings are *positional*: ``send_nodes[q]`` on the
    sender and ``recv_ghosts`` for ``q`` on the receiver list the same
    interface nodes in the same (ascending global id) order, the
    symmetry :meth:`DistGraph.halo_exchange` already relies on.  With
    ``delta`` (the default) each destination gets ``(positions: int32,
    labels: int64)`` pairs for the changed labels — 12 bytes per change
    instead of 16 for explicit global ids — unless a dense 8-bytes-per-
    interface-node label array is smaller (early iterations, where most
    labels change).  Received positions are validated against the shared
    interface size; an out-of-range position or a mis-sized dense
    payload raises, naming the sender, instead of silently corrupting a
    neighbouring ghost slot.
    """
    per_dest: list[object] = [None] * comm.size
    for q, nodes in zip(dgraph.send_ranks.tolist(), dgraph.send_nodes):
        if delta:
            pos = np.flatnonzero(changed_mask[nodes])
            if pos.size * 12 < nodes.size * 8:
                per_dest[q] = (pos.astype(np.int32), labels[nodes[pos]])
                continue
        per_dest[q] = labels[nodes]
    received = comm.alltoall(per_dest, tag="lp.labels")
    ghosts_from = {
        q: g for q, g in zip(dgraph.send_ranks.tolist(), dgraph.recv_ghosts)
    }
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for src, payload in enumerate(received):
        if payload is None:
            continue
        ghosts = ghosts_from.get(src)
        if ghosts is None:
            raise ValueError(
                f"rank {comm.rank} received an interface label payload from "
                f"rank {src}, with which it shares no interface"
            )
        if isinstance(payload, tuple):
            pos, values = payload
            if pos.size == 0:
                continue
            pos = pos.astype(np.int64)
            if int(pos.max()) >= ghosts.size or int(pos.min()) < 0:
                raise ValueError(
                    f"rank {comm.rank} received a delta interface label from "
                    f"rank {src} at position {int(pos.max())}, outside the "
                    f"{ghosts.size}-entry interface shared with that rank "
                    "(inconsistent send lists or a label update for a "
                    "non-interface node)"
                )
            idx_parts.append(ghosts[pos])
            val_parts.append(np.asarray(values, dtype=np.int64))
        else:
            values = np.asarray(payload, dtype=np.int64)
            if values.size != ghosts.size:
                raise ValueError(
                    f"rank {comm.rank} received a dense interface payload of "
                    f"{values.size} labels from rank {src}, which does not "
                    f"match the {ghosts.size}-entry interface shared with "
                    "that rank (inconsistent send lists or a label update "
                    "for a non-interface node)"
                )
            idx_parts.append(ghosts)
            val_parts.append(values)
    if not idx_parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(idx_parts), np.concatenate(val_parts)


def parallel_label_propagation(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    max_block_weight: int,
    iterations: int,
    mode: str = "cluster",
    k: int | None = None,
    constraint: np.ndarray | None = None,
    chunk_size: int | None = None,
    engine: str | None = None,
    delta_exchange: bool = True,
) -> np.ndarray:
    """Run parallel SCLP; returns the updated length-``n_total`` label array.

    Collective over ``comm``.  ``labels`` must contain consistent ghost
    entries on entry (e.g. global node ids for clustering, or a projected
    partition refreshed by a halo exchange).  ``chunk_size`` selects the
    scan engine (0), the bit-identical chunked kernels (1), or throughput
    chunking (>1); ``None`` defers to ``REPRO_LP_CHUNK`` and the default.
    ``engine`` selects the ``full`` sweep or the ``frontier`` active-set
    engine (``None`` defers to ``REPRO_LP_FRONTIER``; the default is
    ``frontier`` for throughput chunking, ``full`` for the bit-exact
    ``chunk_size <= 1`` modes).  ``delta_exchange`` selects the sparse
    interface exchange (the default) over the dense per-destination
    payloads.
    """
    if mode not in ("cluster", "refine"):
        raise ValueError(f"unknown mode {mode!r}")
    refine = mode == "refine"
    if refine and k is None:
        raise ValueError("refinement mode requires k")
    chunk = resolve_chunk_size(chunk_size)
    resolved_engine = resolve_engine(
        engine, default=FRONTIER_ENGINE if chunk > 1 else FULL_ENGINE
    )
    if chunk == 0 and resolved_engine == FRONTIER_ENGINE:
        if engine is not None:
            raise ValueError(
                "the frontier engine requires the chunked kernels "
                "(chunk_size >= 1); chunk_size=0 selects the scan engine"
            )
        resolved_engine = FULL_ENGINE

    labels = np.asarray(labels, dtype=np.int64).copy()
    n_local = dgraph.n_local
    bound = int(max_block_weight)
    interface = dgraph.interface_mask()
    tie_seed = int(comm.rng.integers(0, 2**63 - 1))

    # Node weights including ghosts (one halo exchange).
    vwgt_all = np.zeros(dgraph.n_total, dtype=np.int64)
    vwgt_all[:n_local] = dgraph.vwgt
    dgraph.halo_exchange(comm, vwgt_all)

    constraint_arr = (
        None if constraint is None else np.asarray(constraint, dtype=np.int64)
    )

    if chunk == 0:
        if refine:
            return _scan_refine_phases(
                dgraph, comm, labels, vwgt_all, constraint_arr, interface,
                tie_seed, bound, int(k), iterations, delta_exchange,
            )
        return _scan_cluster_phases(
            dgraph, comm, labels, vwgt_all, constraint_arr, interface,
            tie_seed, bound, iterations, delta_exchange,
        )
    if refine:
        return _chunked_refine_phases(
            dgraph, comm, labels, vwgt_all, constraint_arr, interface,
            tie_seed, bound, int(k), iterations, chunk, resolved_engine,
            delta_exchange,
        )
    return _chunked_cluster_phases(
        dgraph, comm, labels, vwgt_all, constraint_arr, interface,
        tie_seed, bound, iterations, chunk, resolved_engine, delta_exchange,
    )


# ----------------------------------------------------------------------
# Chunked engines (vectorised kernels, see repro.core.lp_kernels)
# ----------------------------------------------------------------------

def _chunked_cluster_phases(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    vwgt_all: np.ndarray,
    constraint: np.ndarray | None,
    interface: np.ndarray,
    tie_seed: int,
    bound: int,
    iterations: int,
    chunk: int,
    engine: str,
    delta: bool,
) -> np.ndarray:
    """Clustering regime with chunked kernels (localized weight view).

    The per-PE weight view is a dense array over the cluster-id space
    (cluster ids are global fine node ids): entries of clusters never
    seen locally stay 0, exactly like the missing keys of the scan
    engine's dict view.

    The frontier engine filters each phase's scan to the active set
    *inside* the full visit-order chunk windows, so chunk commit points
    (and hence the weight/label snapshots every scanned node sees) line
    up exactly with the full sweep — the per-iteration label identity
    depends on it.
    """
    n_local = dgraph.n_local
    xadj, adjncy, adjwgt = dgraph.xadj, dgraph.adjncy, dgraph.adjwgt
    label_space = max(int(dgraph.n_global), int(labels.max(initial=0)) + 1)
    weight = np.zeros(label_space, dtype=np.int64)
    np.add.at(weight, labels, vwgt_all)
    frontier_mode = engine == FRONTIER_ENGINE
    hashed = frontier_mode or chunk > 1
    tie_rng = None if hashed else make_tie_breaker(tie_seed, chunk)

    degrees = dgraph.degrees
    order = np.argsort(degrees, kind="stable")
    scan_order = order[degrees[order] > 0]

    phase_chunk = effective_chunk(chunk, scan_order.size)
    # The degree order is phase-invariant, so the arc structure of every
    # chunk is too: plan once, re-aggregate each phase.  The frontier
    # engine reuses a window's plan whenever the whole window is active
    # (always in phase 0) and re-plans the filtered subset otherwise.
    windows = list(chunk_ranges(scan_order.size, phase_chunk))
    plans = [
        plan_chunk(scan_order[lo:hi], xadj, adjncy, adjwgt, constraint)
        for lo, hi in windows
    ]
    active = np.ones(n_local, dtype=bool)
    for _phase in range(max(0, iterations)):
        lp_span = TRACER.span(
            "lp.iteration", comm=comm, engine=engine, mode="cluster",
            iteration=_phase, chunk_size=phase_chunk, chunks=len(plans),
            constrained=constraint is not None,
        )
        with lp_span:
            changed_mask = np.zeros(n_local, dtype=bool)
            next_active = np.zeros(n_local, dtype=bool)
            arcs_scanned = 0
            phase_moves = 0
            scanned = 0
            # Scanning a superset of the active set is label-identical
            # (extra nodes are provably stay-put stable), so when most
            # nodes are active the filtered re-plans cost more than they
            # save: fall back to the prebuilt full-window plans.
            filtering = (
                frontier_mode
                and scan_order.size > 0
                and active[scan_order].mean() < FRONTIER_FULL_SWEEP_FRACTION
            )
            for (lo, hi), full_plan in zip(windows, plans):
                plan = full_plan
                nodes = full_plan.nodes
                if filtering:
                    live = active[nodes]
                    if not live.all():
                        nodes = nodes[live]
                        if nodes.size == 0:
                            continue
                        plan = plan_chunk(nodes, xadj, adjncy, adjwgt, constraint)
                scanned += int(nodes.size)
                cands = aggregate_candidates(
                    plan, labels, label_space,
                    exact_order=not hashed and chunk == 1,
                )
                arcs_scanned += cands.arcs_scanned
                own = labels[nodes]
                c_v = vwgt_all[nodes]
                fits = weight[cands.labels] + c_v[cands.node_pos] <= bound
                eligible = cands.is_own | fits
                if hashed:
                    # hash *global* ids so tie decisions are a property of
                    # the node, not of its rank-local numbering
                    tie_hash = candidate_tie_hash(
                        tie_seed, dgraph.first + nodes[cands.node_pos], cands.labels
                    )
                    choice, risky = pick_targets_hashed(cands, eligible, tie_hash)
                    if frontier_mode and risky.any():
                        next_active[nodes[risky]] = True
                else:
                    choice = pick_targets(cands, eligible, tie_rng)
                has = choice >= 0
                target = own.copy()
                target[has] = cands.labels[choice[has]]
                moving = np.flatnonzero(target != own)
                if moving.size == 0:
                    continue
                m_nodes, m_own = nodes[moving], own[moving]
                m_target, m_c = target[moving], c_v[moving]
                keep = capped_inflow_mask(
                    m_target, m_c, weight[m_target], np.full(m_target.size, bound)
                )
                if frontier_mode and not keep.all():
                    # A capped node may succeed once the target drains.
                    next_active[m_nodes[~keep]] = True
                m_nodes, m_own = m_nodes[keep], m_own[keep]
                m_target, m_c = m_target[keep], m_c[keep]
                np.subtract.at(weight, m_own, m_c)
                np.add.at(weight, m_target, m_c)
                labels[m_nodes] = m_target
                changed_mask[m_nodes[interface[m_nodes]]] = True
                phase_moves += int(m_nodes.size)
                if frontier_mode and m_nodes.size:
                    next_active[m_nodes] = True
                    nbrs = gather_neighbors(m_nodes, xadj, adjncy)
                    local_nbrs = nbrs[nbrs < n_local]
                    next_active[local_nbrs] = True
                    # Later windows of this phase must rescan the movers'
                    # neighbours too (within-phase propagation).
                    active[local_nbrs] = True
            comm.work(arcs_scanned)

            ghost_idx, ghost_vals = _exchange_interface_labels(
                dgraph, comm, labels, changed_mask, delta
            )
            if ghost_idx.size:
                old = labels[ghost_idx]
                diff = old != ghost_vals
                if diff.any():
                    g_w = vwgt_all[ghost_idx[diff]]
                    np.subtract.at(weight, old[diff], g_w)
                    np.add.at(weight, ghost_vals[diff], g_w)
                    labels[ghost_idx[diff]] = ghost_vals[diff]
                    if frontier_mode:
                        gxadj, gsrc = dgraph.ghost_sources()
                        next_active[
                            gather_neighbors(ghost_idx[diff] - n_local, gxadj, gsrc)
                        ] = True

            global_changed = int(comm.allreduce(int(changed_mask.sum())))
            lp_span.set(moved=phase_moves, arcs=arcs_scanned,
                        global_changed=global_changed, active=scanned,
                        frontier_frac=round(scanned / max(1, scan_order.size), 4))
            if TRACER.enabled:
                TRACER.metrics.counter("lp.iterations").inc()
                TRACER.metrics.counter("lp.moved_nodes").inc(phase_moves)
        if frontier_mode:
            active = next_active
        if global_changed == 0:
            break
    return labels


def _chunked_refine_phases(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    vwgt_all: np.ndarray,
    constraint: np.ndarray | None,
    interface: np.ndarray,
    tie_seed: int,
    bound: int,
    k: int,
    iterations: int,
    chunk: int,
    engine: str,
    delta: bool,
) -> np.ndarray:
    """Refinement regime with chunked kernels (exact weights, 1/p shares).

    The inflow caps are enforced twice: per candidate against the
    chunk-start snapshot (eligibility), and per committed move against
    the chunk's own cumulative inflow (``capped_inflow_mask``), so a PE's
    net inflow into any block never exceeds its 1/p share — the balance
    guarantee survives chunk-internal staleness.

    The frontier engine draws the same per-phase permutation and filters
    inside its chunk windows (commit points line up with the full
    sweep).  On top of the cluster engine's activation rules it
    re-activates every member of an over-budget block at phase start:
    budgets are recomputed from the exact weights each phase, so
    eviction pressure can reach nodes whose neighbourhood never changed.
    """
    n_local = dgraph.n_local
    size = comm.size
    xadj, adjncy, adjwgt = dgraph.xadj, dgraph.adjncy, dgraph.adjwgt
    degrees = dgraph.degrees
    frontier_mode = engine == FRONTIER_ENGINE
    hashed = frontier_mode or chunk > 1
    tie_rng = None if hashed else make_tie_breaker(tie_seed, chunk)

    exact = exact_block_weights(dgraph, comm, labels, k)
    active_set = np.ones(n_local, dtype=bool)

    for _phase in range(max(0, iterations)):
        lp_span = TRACER.span(
            "lp.iteration", comm=comm, engine=engine, mode="refine",
            iteration=_phase, chunk_size=effective_chunk(chunk, n_local),
            constrained=constraint is not None,
        )
        lp_span.__enter__()
        inflow_budget = np.maximum(0.0, (bound - exact) / size)
        evict_budget = np.maximum(0.0, (exact - bound) / size)
        local_net = np.zeros(k, dtype=np.int64)
        local_out = np.zeros(k, dtype=np.int64)
        changed_mask = np.zeros(n_local, dtype=bool)
        next_active = np.zeros(n_local, dtype=bool)
        arcs_scanned = 0
        phase_moves = 0
        scanned = 0
        n_chunks = 0
        if frontier_mode:
            over = np.flatnonzero(exact > bound)
            if over.size:
                # Fresh budgets can make members of over-budget blocks
                # evict even when their neighbourhood never changed.
                active_set |= np.isin(labels[:n_local], over)

        order = comm.rng.permutation(n_local)
        for lo, hi in chunk_ranges(n_local, effective_chunk(chunk, n_local)):
            n_chunks += 1
            nodes = order[lo:hi]
            if frontier_mode:
                nodes = nodes[active_set[nodes]]
                if nodes.size == 0:
                    continue
            scanned += int(nodes.size)
            node_deg = degrees[nodes]
            connected = nodes[node_deg > 0]
            if connected.size:
                own = labels[connected]
                c_v = vwgt_all[connected]
                evicting = (exact[own] > bound) & (local_out[own] < evict_budget[own])
                plan = plan_chunk(connected, xadj, adjncy, adjwgt, constraint)
                cands = aggregate_candidates(
                    plan, labels, k, exact_order=not hashed and chunk == 1
                )
                arcs_scanned += cands.arcs_scanned
                fits = (
                    local_net[cands.labels] + c_v[cands.node_pos]
                    <= inflow_budget[cands.labels]
                )
                eligible = np.where(cands.is_own, ~evicting[cands.node_pos], fits)
                if hashed:
                    tie_hash = candidate_tie_hash(
                        tie_seed, dgraph.first + connected[cands.node_pos], cands.labels
                    )
                    choice, risky = pick_targets_hashed(cands, eligible, tie_hash)
                    if frontier_mode and risky.any():
                        next_active[connected[risky]] = True
                else:
                    choice = pick_targets(cands, eligible, tie_rng)
                has = choice >= 0
                target = own.copy()
                target[has] = cands.labels[choice[has]]
                moving = np.flatnonzero(target != own)
                if moving.size:
                    m_nodes, m_own = connected[moving], own[moving]
                    m_target, m_c = target[moving], c_v[moving]
                    m_evict = evicting[moving]
                    keep = capped_inflow_mask(
                        m_target, m_c, local_net[m_target], inflow_budget[m_target]
                    )
                    if frontier_mode and not keep.all():
                        next_active[m_nodes[~keep]] = True
                    m_nodes, m_own = m_nodes[keep], m_own[keep]
                    m_target, m_c = m_target[keep], m_c[keep]
                    m_evict = m_evict[keep]
                    np.add.at(local_net, m_target, m_c)
                    np.subtract.at(local_net, m_own, m_c)
                    np.add.at(local_out, m_own[m_evict], m_c[m_evict])
                    labels[m_nodes] = m_target
                    changed_mask[m_nodes[interface[m_nodes]]] = True
                    phase_moves += int(m_nodes.size)
                    if frontier_mode and m_nodes.size:
                        next_active[m_nodes] = True
                        nbrs = gather_neighbors(m_nodes, xadj, adjncy)
                        local_nbrs = nbrs[nbrs < n_local]
                        next_active[local_nbrs] = True
                        active_set[local_nbrs] = True
            # Isolated nodes: balance repair within the eviction budget,
            # node-at-a-time against the live views (rare, O(k) each).
            for v in nodes[node_deg == 0].tolist():
                own_v = int(labels[v])
                if exact[own_v] <= bound or local_out[own_v] >= evict_budget[own_v]:
                    continue
                c = int(vwgt_all[v])
                eligible_blocks = (local_net + c) <= inflow_budget
                eligible_blocks[own_v] = False
                if not eligible_blocks.any():
                    continue
                load = np.where(
                    eligible_blocks, exact + local_net, np.iinfo(np.int64).max
                )
                b = int(np.argmin(load))
                local_net[own_v] -= c
                local_net[b] += c
                local_out[own_v] += c
                labels[v] = b
                phase_moves += 1
                if frontier_mode:
                    next_active[v] = True
                if interface[v]:
                    changed_mask[v] = True
        comm.work(arcs_scanned)

        ghost_idx, ghost_vals = _exchange_interface_labels(
            dgraph, comm, labels, changed_mask, delta
        )
        if ghost_idx.size:
            if frontier_mode:
                diff = labels[ghost_idx] != ghost_vals
                if diff.any():
                    gxadj, gsrc = dgraph.ghost_sources()
                    next_active[
                        gather_neighbors(ghost_idx[diff] - n_local, gxadj, gsrc)
                    ] = True
            labels[ghost_idx] = ghost_vals

        # Restore exact weights with one allreduce (Section IV-B).
        exact = exact_block_weights(dgraph, comm, labels, k)

        global_changed = int(comm.allreduce(int(changed_mask.sum())))
        lp_span.set(moved=phase_moves, arcs=arcs_scanned, chunks=n_chunks,
                    global_changed=global_changed, active=scanned,
                    frontier_frac=round(scanned / max(1, n_local), 4))
        if TRACER.enabled:
            TRACER.metrics.counter("lp.iterations").inc()
            TRACER.metrics.counter("lp.moved_nodes").inc(phase_moves)
        lp_span.__exit__(None, None, None)
        if frontier_mode:
            active_set = next_active
        if global_changed == 0:
            break
    return labels


# ----------------------------------------------------------------------
# Legacy scan engine (node-at-a-time, Python lists)
# ----------------------------------------------------------------------

def _scan_cluster_phases(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    vwgt_all_arr: np.ndarray,
    constraint: np.ndarray | None,
    interface: np.ndarray,
    tie_seed: int,
    bound: int,
    iterations: int,
    delta: bool,
) -> np.ndarray:
    """Clustering regime, node-at-a-time (Section IV-B, coarsening)."""
    n_local = dgraph.n_local
    xadj = dgraph.xadj.tolist()
    adjncy = dgraph.adjncy.tolist()
    adjwgt = dgraph.adjwgt.tolist()
    label_list = labels.tolist()
    constraint_list = None if constraint is None else constraint.tolist()
    vwgt_all = vwgt_all_arr.tolist()
    tie_rng = _pyrandom.Random(tie_seed)

    weight_view: dict[int, int] = {}
    for lid in range(dgraph.n_total):
        lab = label_list[lid]
        weight_view[lab] = weight_view.get(lab, 0) + vwgt_all[lid]

    degree_order = np.argsort(dgraph.degrees, kind="stable").tolist()
    for _phase in range(max(0, iterations)):
        lp_span = TRACER.span(
            "lp.iteration", comm=comm, engine="scan", mode="cluster",
            iteration=_phase, constrained=constraint is not None,
        )
        lp_span.__enter__()
        changed: list[int] = []
        arcs_scanned = 0
        phase_moves = 0
        for v in degree_order:
            begin, end = xadj[v], xadj[v + 1]
            if begin == end:
                continue
            arcs_scanned += end - begin
            own = label_list[v]
            my_constraint = constraint_list[v] if constraint_list is not None else None

            conn: dict[int, int] = {}
            for idx in range(begin, end):
                u = adjncy[idx]
                if my_constraint is not None and constraint_list[u] != my_constraint:
                    continue
                lab = label_list[u]
                conn[lab] = conn.get(lab, 0) + adjwgt[idx]
            conn.setdefault(own, 0)

            c_v = vwgt_all[v]
            best_weight = -1
            best_labels: list[int] = []
            for lab, strength in conn.items():
                if lab != own and weight_view.get(lab, 0) + c_v > bound:
                    continue
                if strength > best_weight:
                    best_weight = strength
                    best_labels = [lab]
                elif strength == best_weight:
                    best_labels.append(lab)
            if not best_labels:
                continue
            target = (
                best_labels[0]
                if len(best_labels) == 1
                else best_labels[tie_rng.randrange(len(best_labels))]
            )
            if target != own:
                weight_view[own] = weight_view.get(own, 0) - c_v
                weight_view[target] = weight_view.get(target, 0) + c_v
                label_list[v] = target
                phase_moves += 1
                if interface[v]:
                    changed.append(v)
        comm.work(arcs_scanned)

        changed_mask = np.zeros(n_local, dtype=bool)
        changed_mask[changed] = True
        labels_arr = np.asarray(label_list, dtype=np.int64)
        ghost_idx, ghost_vals = _exchange_interface_labels(
            dgraph, comm, labels_arr, changed_mask, delta
        )
        for gi, new_lab in zip(ghost_idx.tolist(), ghost_vals.tolist()):
            old = label_list[gi]
            if old == new_lab:
                continue
            w = vwgt_all[gi]
            weight_view[old] = weight_view.get(old, 0) - w
            weight_view[new_lab] = weight_view.get(new_lab, 0) + w
            label_list[gi] = new_lab

        global_changed = int(comm.allreduce(len(changed)))
        lp_span.set(moved=phase_moves, arcs=arcs_scanned,
                    global_changed=global_changed)
        if TRACER.enabled:
            TRACER.metrics.counter("lp.iterations").inc()
            TRACER.metrics.counter("lp.moved_nodes").inc(phase_moves)
        lp_span.__exit__(None, None, None)
        if global_changed == 0:
            break

    return np.asarray(label_list, dtype=np.int64)


def _scan_refine_phases(
    dgraph: DistGraph,
    comm: SimComm,
    labels: np.ndarray,
    vwgt_all_arr: np.ndarray,
    constraint: np.ndarray | None,
    interface: np.ndarray,
    tie_seed: int,
    bound: int,
    k: int,
    iterations: int,
    delta: bool,
) -> np.ndarray:
    """Refinement regime: exact weights per phase, per-PE budget shares."""
    n_local = dgraph.n_local
    size = comm.size
    xadj = dgraph.xadj.tolist()
    adjncy = dgraph.adjncy.tolist()
    adjwgt = dgraph.adjwgt.tolist()
    label_list = labels.tolist()
    constraint_list = None if constraint is None else constraint.tolist()
    vwgt_all = vwgt_all_arr.tolist()
    tie_rng = _pyrandom.Random(tie_seed)

    exact = exact_block_weights(
        dgraph, comm, np.asarray(label_list, dtype=np.int64), k
    ).tolist()

    for _phase in range(max(0, iterations)):
        lp_span = TRACER.span(
            "lp.iteration", comm=comm, engine="scan", mode="refine",
            iteration=_phase, constrained=constraint is not None,
        )
        lp_span.__enter__()
        # Per-PE budgets for this phase (see module docstring).
        inflow_budget = [max(0.0, (bound - exact[b]) / size) for b in range(k)]
        evict_budget = [max(0.0, (exact[b] - bound) / size) for b in range(k)]
        local_net = [0] * k  # this PE's net weight added to each block
        local_out = [0] * k  # weight this PE evicted from overloaded blocks

        changed: list[int] = []
        arcs_scanned = 0
        phase_moves = 0
        for v in comm.rng.permutation(n_local).tolist():
            begin, end = xadj[v], xadj[v + 1]
            own = label_list[v]
            if begin == end:
                # Isolated node: may still repair balance (see the
                # sequential engine) within this PE's eviction budget.
                c_v = vwgt_all[v]
                if exact[own] > bound and local_out[own] < evict_budget[own]:
                    candidates = [
                        b for b in range(k)
                        if b != own and local_net[b] + c_v <= inflow_budget[b]
                    ]
                    if candidates:
                        target = min(candidates, key=lambda b: exact[b] + local_net[b])
                        local_net[own] -= c_v
                        local_net[target] += c_v
                        local_out[own] += c_v
                        label_list[v] = target
                        phase_moves += 1
                        if interface[v]:
                            changed.append(v)
                continue
            arcs_scanned += end - begin
            my_constraint = constraint_list[v] if constraint_list is not None else None

            conn: dict[int, int] = {}
            for idx in range(begin, end):
                u = adjncy[idx]
                if my_constraint is not None and constraint_list[u] != my_constraint:
                    continue
                lab = label_list[u]
                conn[lab] = conn.get(lab, 0) + adjwgt[idx]

            c_v = vwgt_all[v]
            evicting = exact[own] > bound and local_out[own] < evict_budget[own]
            if not evicting:
                conn.setdefault(own, 0)

            best_weight = -1
            best_labels: list[int] = []
            for lab, strength in conn.items():
                if lab == own:
                    if evicting:
                        continue
                elif local_net[lab] + c_v > inflow_budget[lab]:
                    continue  # this PE's share of block `lab` is used up
                if strength > best_weight:
                    best_weight = strength
                    best_labels = [lab]
                elif strength == best_weight:
                    best_labels.append(lab)
            if not best_labels:
                continue
            target = (
                best_labels[0]
                if len(best_labels) == 1
                else best_labels[tie_rng.randrange(len(best_labels))]
            )
            if target != own:
                local_net[own] -= c_v
                local_net[target] += c_v
                if evicting:
                    local_out[own] += c_v
                label_list[v] = target
                phase_moves += 1
                if interface[v]:
                    changed.append(v)
        comm.work(arcs_scanned)

        changed_mask = np.zeros(n_local, dtype=bool)
        changed_mask[changed] = True
        labels_arr = np.asarray(label_list, dtype=np.int64)
        ghost_idx, ghost_vals = _exchange_interface_labels(
            dgraph, comm, labels_arr, changed_mask, delta
        )
        for gi, new_lab in zip(ghost_idx.tolist(), ghost_vals.tolist()):
            label_list[gi] = new_lab

        # Restore exact weights with one allreduce (Section IV-B).
        exact = exact_block_weights(
            dgraph, comm, np.asarray(label_list, dtype=np.int64), k
        ).tolist()

        global_changed = int(comm.allreduce(len(changed)))
        lp_span.set(moved=phase_moves, arcs=arcs_scanned,
                    global_changed=global_changed)
        if TRACER.enabled:
            TRACER.metrics.counter("lp.iterations").inc()
            TRACER.metrics.counter("lp.moved_nodes").inc(phase_moves)
        lp_span.__exit__(None, None, None)
        if global_changed == 0:
            break

    return np.asarray(label_list, dtype=np.int64)
