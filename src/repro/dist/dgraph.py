"""Distributed graph: contiguous node ranges, ghost nodes, ID translation.

This mirrors the paper's parallel graph data structure (Section IV-A):

* each PE owns a *contiguous* range of global node ids
  ``vtxdist[p] .. vtxdist[p+1]`` and stores the adjacency arrays of those
  nodes;
* endpoints of edges leaving the range are *ghost* (halo) nodes: they get
  local ids after the owned nodes, their global ids are kept in a side
  array, and a lookup structure translates ghost global ids back to local
  ids (the paper uses a hash table; we use a sorted array +
  ``searchsorted``, which is the vectorised equivalent);
* for each ghost node the owning PE is stored for O(1) lookup.

The structure also precomputes the *send lists* the halo exchange needs:
for every other PE ``q``, the owned nodes that ``q`` has as ghosts —
exactly the interface nodes with a neighbour owned by ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import Graph
from .comm import SimComm

__all__ = ["DistGraph", "balanced_vtxdist"]


def balanced_vtxdist(num_nodes: int, num_parts: int) -> np.ndarray:
    """Contiguous near-equal node ranges: ``vtxdist`` of length ``P + 1``."""
    counts = np.full(num_parts, num_nodes // num_parts, dtype=np.int64)
    counts[: num_nodes % num_parts] += 1
    out = np.zeros(num_parts + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


@dataclass
class DistGraph:
    """One PE's share of a distributed graph.

    Local ids ``0 .. n_local-1`` are the owned nodes (global id minus
    ``first``); ids ``n_local .. n_local+n_ghost-1`` are ghosts in
    ascending global-id order.
    """

    rank: int
    vtxdist: np.ndarray
    xadj: np.ndarray  # local CSR over owned nodes (n_local + 1)
    adjncy: np.ndarray  # *local* ids (owned or ghost)
    adjwgt: np.ndarray
    vwgt: np.ndarray  # owned nodes only (n_local)
    ghost_global: np.ndarray  # sorted global ids of ghosts
    ghost_owner: np.ndarray  # owning rank per ghost
    send_ranks: np.ndarray  # adjacent PEs we must send interface values to
    send_nodes: list[np.ndarray]  # per adjacent PE: owned local ids it ghosts
    recv_ghosts: list[np.ndarray]  # per adjacent PE: ghost local ids it owns

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, graph: Graph, vtxdist: np.ndarray, rank: int) -> "DistGraph":
        """Slice one PE's subgraph out of a (shared) global graph.

        In a real MPI code this would be the result of a parallel file
        read or a scatter; the simulation shares the input graph, so each
        rank slices directly.
        """
        vtxdist = np.asarray(vtxdist, dtype=np.int64)
        first, last = int(vtxdist[rank]), int(vtxdist[rank + 1])
        n_local = last - first

        lo, hi = int(graph.xadj[first]), int(graph.xadj[last])
        xadj = (graph.xadj[first : last + 1] - lo).astype(np.int64)
        targets = graph.adjncy[lo:hi]
        adjwgt = graph.adjwgt[lo:hi].copy()

        local_mask = (targets >= first) & (targets < last)
        ghost_global = np.unique(targets[~local_mask])
        adjncy = np.empty_like(targets)
        adjncy[local_mask] = targets[local_mask] - first
        adjncy[~local_mask] = n_local + np.searchsorted(ghost_global, targets[~local_mask])

        ghost_owner = (np.searchsorted(vtxdist, ghost_global, side="right") - 1).astype(np.int64)

        # Send lists: owned endpoints of cross arcs, grouped by the owner
        # of the ghost endpoint.
        src = np.repeat(np.arange(n_local, dtype=np.int64), np.diff(xadj))
        cross = ~local_mask
        pair_owner = ghost_owner[adjncy[cross] - n_local]
        pair_src = src[cross]
        send_ranks = np.unique(pair_owner)
        send_nodes = [
            np.unique(pair_src[pair_owner == q]) for q in send_ranks
        ]
        recv_ghosts = [
            np.flatnonzero(ghost_owner == q) + n_local for q in send_ranks
        ]
        return cls(
            rank=rank,
            vtxdist=vtxdist,
            xadj=xadj,
            adjncy=adjncy,
            adjwgt=adjwgt,
            vwgt=graph.vwgt[first:last].copy(),
            ghost_global=ghost_global,
            ghost_owner=ghost_owner,
            send_ranks=send_ranks,
            send_nodes=send_nodes,
            recv_ghosts=recv_ghosts,
        )

    @classmethod
    def from_arcs(
        cls,
        vtxdist: np.ndarray,
        rank: int,
        src_global: np.ndarray,
        dst_global: np.ndarray,
        weights: np.ndarray,
        vwgt: np.ndarray,
    ) -> "DistGraph":
        """Build a PE's subgraph from its arc list (global endpoint ids).

        Used by the parallel contraction algorithm: after the shuffle,
        each PE holds all arcs whose source it owns, as parallel arrays.
        Duplicate arcs must already be merged; ``vwgt`` covers the owned
        range in order.
        """
        vtxdist = np.asarray(vtxdist, dtype=np.int64)
        first, last = int(vtxdist[rank]), int(vtxdist[rank + 1])
        n_local = last - first

        src = np.asarray(src_global, dtype=np.int64) - first
        dst = np.asarray(dst_global, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        order = np.lexsort((dst, src))
        src, dst, weights = src[order], dst[order], weights[order]

        xadj = np.zeros(n_local + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n_local), out=xadj[1:])

        local_mask = (dst >= first) & (dst < last)
        ghost_global = np.unique(dst[~local_mask])
        adjncy = np.empty_like(dst)
        adjncy[local_mask] = dst[local_mask] - first
        adjncy[~local_mask] = n_local + np.searchsorted(ghost_global, dst[~local_mask])
        ghost_owner = (np.searchsorted(vtxdist, ghost_global, side="right") - 1).astype(np.int64)

        cross = ~local_mask
        pair_owner = ghost_owner[adjncy[cross] - n_local]
        pair_src = src[cross]
        send_ranks = np.unique(pair_owner)
        send_nodes = [np.unique(pair_src[pair_owner == q]) for q in send_ranks]
        recv_ghosts = [np.flatnonzero(ghost_owner == q) + n_local for q in send_ranks]
        return cls(
            rank=rank,
            vtxdist=vtxdist,
            xadj=xadj,
            adjncy=adjncy,
            adjwgt=weights,
            vwgt=np.asarray(vwgt, dtype=np.int64),
            ghost_global=ghost_global,
            ghost_owner=ghost_owner,
            send_ranks=send_ranks,
            send_nodes=send_nodes,
            recv_ghosts=recv_ghosts,
        )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def first(self) -> int:
        """First owned global node id."""
        return int(self.vtxdist[self.rank])

    @property
    def n_local(self) -> int:
        return int(self.xadj.size - 1)

    @property
    def n_ghost(self) -> int:
        return int(self.ghost_global.size)

    @property
    def n_total(self) -> int:
        """Owned plus ghost nodes — the length of per-node value arrays."""
        return self.n_local + self.n_ghost

    @property
    def n_global(self) -> int:
        return int(self.vtxdist[-1])

    @property
    def num_arcs(self) -> int:
        return int(self.adjncy.size)

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)

    # ------------------------------------------------------------------
    # Id translation
    # ------------------------------------------------------------------
    def owner_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Owning rank of each global node id (vectorised)."""
        return (np.searchsorted(self.vtxdist, global_ids, side="right") - 1).astype(np.int64)

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Translate local ids (owned or ghost) to global ids."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        out = local_ids + self.first
        ghost = local_ids >= self.n_local
        if ghost.any():
            out = out.copy()
            out[ghost] = self.ghost_global[local_ids[ghost] - self.n_local]
        return out

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global ids to local ids (owned or known ghosts).

        Raises ``KeyError`` if an id is neither owned nor a ghost here.
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        out = np.empty_like(global_ids)
        owned = (global_ids >= self.first) & (global_ids < self.first + self.n_local)
        out[owned] = global_ids[owned] - self.first
        rest = ~owned
        if rest.any():
            idx = np.searchsorted(self.ghost_global, global_ids[rest])
            bad = (idx >= self.n_ghost) | (
                self.ghost_global[np.minimum(idx, max(self.n_ghost - 1, 0))]
                != global_ids[rest]
            )
            if self.n_ghost == 0 or bad.any():
                raise KeyError("global id is neither owned nor ghosted on this PE")
            out[rest] = idx + self.n_local
        return out

    # ------------------------------------------------------------------
    # Neighbourhood access
    # ------------------------------------------------------------------
    def neighbors(self, v_local: int) -> np.ndarray:
        """Local-id neighbours of an owned node."""
        return self.adjncy[self.xadj[v_local] : self.xadj[v_local + 1]]

    def incident_weights(self, v_local: int) -> np.ndarray:
        return self.adjwgt[self.xadj[v_local] : self.xadj[v_local + 1]]

    def arc_sources(self) -> np.ndarray:
        """Local source node of every stored arc."""
        return np.repeat(np.arange(self.n_local, dtype=np.int64), self.degrees)

    def interface_mask(self) -> np.ndarray:
        """Boolean mask over owned nodes: has at least one ghost neighbour."""
        mask = np.zeros(self.n_local, dtype=bool)
        ghost_arcs = self.adjncy >= self.n_local
        if ghost_arcs.any():
            mask[self.arc_sources()[ghost_arcs]] = True
        return mask

    def ghost_fraction(self) -> float:
        """Fraction of arcs pointing at ghosts (the paper's locality measure)."""
        if self.num_arcs == 0:
            return 0.0
        return float((self.adjncy >= self.n_local).sum() / self.num_arcs)

    def ghost_sources(self) -> tuple[np.ndarray, np.ndarray]:
        """Reverse CSR: ghost slot -> owned nodes with an arc to that ghost.

        Returns ``(gxadj, gsrc)`` with the owned sources of ghost slot
        ``g`` (0-based, i.e. local id minus ``n_local``) at
        ``gsrc[gxadj[g]:gxadj[g + 1]]``.  The frontier LP engine uses it
        to activate the local neighbours of ghosts whose labels changed.
        Built lazily from the adjacency on first use and cached (the
        arrays are immutable per level).
        """
        cached = self.__dict__.get("_ghost_sources_cache")
        if cached is not None:
            return cached
        ghost_arcs = self.adjncy >= self.n_local
        slots = self.adjncy[ghost_arcs] - self.n_local
        srcs = self.arc_sources()[ghost_arcs]
        order = np.argsort(slots, kind="stable")
        gxadj = np.zeros(self.n_ghost + 1, dtype=np.int64)
        np.cumsum(np.bincount(slots, minlength=self.n_ghost), out=gxadj[1:])
        cached = (gxadj, srcs[order])
        self.__dict__["_ghost_sources_cache"] = cached
        return cached

    # ------------------------------------------------------------------
    # Halo exchange
    # ------------------------------------------------------------------
    def halo_exchange(self, comm: SimComm, values: np.ndarray) -> None:
        """Refresh the ghost entries of a length-``n_total`` value array.

        Each PE sends the current values of the owned nodes its neighbours
        ghost; receives are scattered into the ghost slots *in place*.
        """
        per_dest: list[np.ndarray | None] = [None] * comm.size
        for q, nodes in zip(self.send_ranks.tolist(), self.send_nodes):
            per_dest[q] = values[nodes]
        received = comm.alltoall(per_dest, tag="halo")
        for q, ghosts in zip(self.send_ranks.tolist(), self.recv_ghosts):
            payload = received[q]
            if payload is not None:
                values[ghosts] = payload

    def gather_global(self, comm: SimComm, values: np.ndarray) -> np.ndarray:
        """Allgather owned values into a full global array (collect step)."""
        pieces = comm.allgather(np.asarray(values[: self.n_local]))
        return np.concatenate(pieces)
