"""The backend-abstracted SCLP iteration driver (paper §III-A, §IV-B).

One driver owns the size-constrained label-propagation loop for *both*
pipelines: visit planning, chunk scheduling, frontier activation and
reactivation, constraint accounting, and convergence.  Everything that
differs between the sequential and the distributed run is either an
:class:`~repro.engine.backend.ExecutionBackend` hook (halo exchange,
work charging, block-weight reduction, convergence reduction, tie-hash
id base) or one of two *weight regimes* selected by ``shares``:

* ``shares=False`` — live accounting: one weight table updated on every
  move, checked directly against the bound.  This is the sequential
  semantics (and the clustering regime on both backends, where the view
  is a local, optimistically-updated approximation).
* ``shares=True`` — the paper's refinement regime: exact block weights
  restored by a (backend) reduction at every phase boundary, and per-PE
  1/p budget shares within the phase, so the bound holds even when every
  PE exhausts its share.  On the local backend the reduction is a
  ``bincount`` and the share is 1/1 — the exact p = 1 degeneration of
  the SPMD semantics.

Two scan engines implement a phase (selected by ``chunk``): the
node-at-a-time Python scan (``chunk == 0``) and the vectorised chunked
kernels of :mod:`repro.engine.kernels` (``chunk == 1`` is bit-identical
to the scan, larger chunks trade phase-internal staleness for
throughput).  Orthogonally ``engine`` picks the ``full`` sweep or the
``frontier`` active-set filter (label-identical per iteration with the
hash tie-break; see the PR-4 design notes in ``docs/algorithms.md``).

Convergence is a backend hook: the local backend stops when a phase
moves no node, the SPMD backend when the allreduced count of *changed
interface labels* is zero — each preserving its pipeline's established
(and baseline-pinned) semantics.
"""

from __future__ import annotations

import random as _pyrandom
import time as _time

import numpy as np

from .autotune import (
    S_ARCS,
    S_CANCELLED,
    S_CHUNKS,
    S_NEXT,
    S_SCANNED,
    S_UNIVERSE,
    S_UPPER,
    S_WALL,
    STATS_LEN,
    SWEEP_FRONTIER,
    AutotuneController,
)
from .kernels import (
    ADAPTIVE_ENGINE,
    FRONTIER_ENGINE,
    FRONTIER_FULL_SWEEP_FRACTION,
    FULL_ENGINE,
    IterationWorkspace,
    aggregate_candidates,
    candidate_tie_hash,
    capped_inflow_mask,
    chunk_ranges,
    effective_chunk,
    gather_neighbors,
    make_tie_breaker,
    pick_targets,
    pick_targets_hashed,
    plan_chunk,
)
from ..obsv.tracer import TRACER
from ..perf.rss import memory_sample
from .backend import ExecutionBackend

__all__ = ["run_sclp"]

_SENTINEL = np.iinfo(np.int64).max


def _set_store_gauges(backend: ExecutionBackend) -> None:
    """Publish an out-of-core store's cumulative access counters.

    Gauges (not counters) because the store accumulates across phases
    and runs — the last set value is the run's total, so repeated
    publication never double-counts.
    """
    stats = backend.store_stats()
    if stats is None or backend.resident:
        return
    for key, value in stats.as_dict().items():
        TRACER.metrics.gauge(f"store.{key}").set(value)


def run_sclp(
    backend: ExecutionBackend,
    labels: np.ndarray,
    max_block_weight: int,
    iterations: int,
    *,
    refine: bool = False,
    shares: bool = False,
    k: int | None = None,
    ordering: str = "degree",
    constraint: np.ndarray | None = None,
    chunk: int = 0,
    engine: str = "full",
    tie_seed: int = 0,
    delta: bool = True,
    band: np.ndarray | None = None,
) -> np.ndarray:
    """Run SCLP phases on ``backend``; returns the new label array.

    Collective over the backend's communicator.  ``labels`` (length
    ``n_total``, consistent ghost entries) is not modified.  ``shares``
    selects the weight regime (see module docstring); it requires ``k``.
    ``band`` (scan engine only) restricts the visited nodes to the given
    set — non-band nodes contribute weights and connections but never
    move, and isolated nodes are skipped entirely (band refinement).
    """
    if shares and k is None:
        raise ValueError("the budget-share regime requires k")
    if ordering not in ("degree", "random", "node"):
        raise ValueError(f"unknown ordering {ordering!r}")
    labels = np.asarray(labels, dtype=np.int64).copy()
    bound = int(max_block_weight)
    vwgt_all = backend.node_weights()
    interface = backend.interface_mask()
    constraint_arr = (
        None if constraint is None else np.asarray(constraint, dtype=np.int64)
    )
    if chunk == 0:
        return _scan_phases(
            backend, labels, bound, iterations, refine, shares, k,
            ordering, constraint_arr, tie_seed, delta, vwgt_all, interface,
            band,
        )
    if band is not None:
        raise ValueError("band refinement only supports the scan engine")
    return _chunked_phases(
        backend, labels, bound, iterations, refine, shares, k,
        ordering, constraint_arr, chunk, engine, tie_seed, delta,
        vwgt_all, interface,
    )


# ----------------------------------------------------------------------
# Chunked engine (vectorised kernels)
# ----------------------------------------------------------------------

def _chunked_phases(
    backend: ExecutionBackend,
    labels: np.ndarray,
    bound: int,
    iterations: int,
    refine: bool,
    shares: bool,
    k: int | None,
    ordering: str,
    constraint: np.ndarray | None,
    chunk: int,
    engine: str,
    tie_seed: int,
    delta: bool,
    vwgt_all: np.ndarray,
    interface: np.ndarray,
) -> np.ndarray:
    """Chunked-kernel phases: eligibility against a chunk-start snapshot,
    committed between chunks with the inflow cap, so the bound (or the
    1/p budget share) holds exactly despite the staleness."""
    n_local = backend.n_local
    xadj, adjncy, adjwgt = backend.xadj, backend.adjncy, backend.adjwgt
    degrees = backend.degrees
    adaptive = engine == ADAPTIVE_ENGINE and chunk > 1
    if engine == ADAPTIVE_ENGINE and not adaptive:
        # chunk == 1 is the bit-exact scan-equivalent regime: there is
        # nothing to tune, and the hashed tie-break must stay off.
        engine = FULL_ENGINE
    frontier_mode = engine == FRONTIER_ENGINE
    hashed = frontier_mode or chunk > 1
    tie_rng = None if hashed else make_tie_breaker(tie_seed, chunk)
    tie_base = backend.tie_base
    mode_name = "refine" if refine else "cluster"
    controller = AutotuneController(chunk) if adaptive else None
    workspace = IterationWorkspace() if hashed else None

    weight = local_net = local_out = inflow_budget = evict_budget = exact = None
    if refine:
        if shares:
            space = int(k)
            exact = backend.reduce_block_weights(labels, space)
            local_net = np.zeros(space, dtype=np.int64)
            local_out = np.zeros(space, dtype=np.int64)
        else:
            space = int(labels.max()) + 1
            weight = np.bincount(
                labels, weights=vwgt_all, minlength=space
            ).astype(np.int64)
    else:
        space = backend.label_space(labels)
        weight = np.zeros(space, dtype=np.int64)
        np.add.at(weight, labels, vwgt_all)

    # Degree and node order are phase-invariant (and consume no
    # randomness), so the per-chunk arc structure can be planned once and
    # re-aggregated every phase; random order needs fresh plans per
    # phase, and the frontier engine re-plans any window it filters.
    # Caching plans retains every chunk's gathered arc arrays, i.e. the
    # whole graph — exactly what an out-of-core store must not do, so
    # caching is also gated on the arc arrays being RAM-resident.
    static_order = ordering in ("degree", "node")
    if static_order:
        if ordering == "degree":
            base_order = np.argsort(degrees, kind="stable")
        else:
            # Natural node order: chunk windows are contiguous node (and
            # therefore shard) ranges, the shard-sequential visit order
            # of the semi-external regime.
            base_order = np.arange(n_local, dtype=np.int64)
        if not refine:
            base_order = base_order[degrees[base_order] > 0]
    cache_plans = static_order and backend.resident
    plan_cache: dict[tuple[int, int], object] = {}

    def chunk_plan(nodes, lo, hi):
        if not cache_plans:
            return plan_chunk(nodes, xadj, adjncy, adjwgt, constraint)
        key = (lo, hi)
        plan = plan_cache.get(key)
        if plan is None:
            plan = plan_cache[key] = plan_chunk(
                nodes, xadj, adjncy, adjwgt, constraint
            )
        return plan

    active = np.ones(n_local, dtype=bool)
    # Persistent per-phase masks: filled (not reallocated) every phase,
    # with the frontier double-buffer swapped at the phase boundary.
    next_active = np.zeros(n_local, dtype=bool)
    changed_mask = np.zeros(n_local, dtype=bool)
    # Phase-head label snapshot backing the controller's switch signal:
    # the mover term must be a pure function of the label trajectory
    # (net end-of-phase diff), not of per-chunk mover counts, which
    # depend on the chunk layout and therefore on the rank count.
    base_labels = np.empty(n_local, dtype=labels.dtype) if adaptive else None
    for _phase in range(max(0, iterations)):
        decision = controller.decide() if controller is not None else None
        sweep_frontier = (
            frontier_mode if decision is None
            else decision.sweep == SWEEP_FRONTIER
        )
        # Chunk requests (static or autotune probes) are clamped by the
        # backend's store: a sharded store rounds to a divisor of its
        # shard node span so chunk windows do not straddle shard seams.
        req_chunk = backend.clamp_chunk(
            chunk if decision is None else decision.chunk
        )
        # Adaptive full sweeps defer the frontier bookkeeping: collect
        # what *would* activate (movers, risky, capped, changed ghosts)
        # as cheap array appends, and only materialise the active set if
        # the controller actually switches.
        defer = adaptive and not sweep_frontier
        pend_nodes: list[np.ndarray] = []
        pend_extra: list[np.ndarray] = []
        pend_ghost: list[np.ndarray] = []
        cancelled = 0
        wall_t0 = _time.perf_counter() if adaptive else 0.0
        if defer:
            np.copyto(base_labels, labels[:n_local])
        if static_order:
            order = base_order
        else:
            order = backend.rng.permutation(n_local)
            if not refine:
                order = order[degrees[order] > 0]
        phase_chunk = effective_chunk(req_chunk, order.size)
        span_extra = {} if decision is None else {
            "sweep": decision.sweep, "chunk_request": decision.chunk,
        }
        lp_span = TRACER.span(
            "lp.iteration", **backend.span_kwargs(), engine=engine,
            mode=mode_name, iteration=_phase, chunk_size=phase_chunk,
            constrained=constraint is not None, **span_extra,
        )
        lp_span.__enter__()
        if shares:
            inflow_budget = np.maximum(0.0, (bound - exact) / backend.size)
            evict_budget = np.maximum(0.0, (exact - bound) / backend.size)
            local_net[:] = 0
            local_out[:] = 0
        if sweep_frontier and refine:
            over = np.flatnonzero((exact if shares else weight) > bound)
            if over.size:
                # Eviction pressure reaches over-budget blocks' members
                # even when their neighbourhood never changed.
                active |= np.isin(labels[:n_local], over)
        changed_mask.fill(False)
        next_active.fill(False)
        arcs_scanned = 0
        moved = 0
        scanned = 0
        n_chunks = 0
        # Scanning a superset of the active set is label-identical, so
        # with cached degree-order plans the filtered re-plans only pay
        # for themselves below ~half activity; random order re-plans
        # every phase anyway, making filtering a pure win.  The adaptive
        # controller only picks the frontier sweep below the entry
        # fraction, so there filtering is unconditional.
        filtering = sweep_frontier and (
            adaptive
            or not cache_plans
            or order.size == 0
            or active[order].mean() < FRONTIER_FULL_SWEEP_FRACTION
        )
        for lo, hi in chunk_ranges(order.size, phase_chunk):
            n_chunks += 1
            nodes = order[lo:hi]
            full_window = True
            if filtering:
                live = active[nodes]
                if not live.all():
                    full_window = False
                    nodes = nodes[live]
                    if nodes.size == 0:
                        continue
            scanned += int(nodes.size)
            if refine:
                node_deg = degrees[nodes]
                connected = nodes[node_deg > 0]
            else:
                connected = nodes
            if connected.size:
                own = labels[connected]
                c_v = vwgt_all[connected]
                if refine:
                    if shares:
                        evicting = (exact[own] > bound) & (
                            local_out[own] < evict_budget[own]
                        )
                    else:
                        evicting = weight[own] > bound
                plan = (
                    chunk_plan(connected, lo, hi)
                    if full_window
                    else plan_chunk(connected, xadj, adjncy, adjwgt, constraint)
                )
                cands = aggregate_candidates(
                    plan, labels, space,
                    exact_order=not hashed and chunk == 1,
                    workspace=workspace,
                )
                arcs_scanned += cands.arcs_scanned
                if shares:
                    fits = (
                        local_net[cands.labels] + c_v[cands.node_pos]
                        <= inflow_budget[cands.labels]
                    )
                else:
                    fits = weight[cands.labels] + c_v[cands.node_pos] <= bound
                if refine:
                    eligible = np.where(cands.is_own, ~evicting[cands.node_pos], fits)
                else:
                    eligible = cands.is_own | fits
                if hashed:
                    # hash *global* ids so tie decisions are a property of
                    # the node, not of its rank-local numbering
                    tie_ids = connected[cands.node_pos]
                    if tie_base:
                        tie_ids = tie_base + tie_ids
                    tie_hash = candidate_tie_hash(tie_seed, tie_ids, cands.labels)
                    choice, risky = pick_targets_hashed(
                        cands, eligible, tie_hash, workspace=workspace
                    )
                    if (sweep_frontier or defer) and risky.any():
                        flagged = connected[risky]
                        if sweep_frontier:
                            next_active[flagged] = True
                        else:
                            pend_extra.append(flagged)
                else:
                    choice = pick_targets(cands, eligible, tie_rng)
                has = choice >= 0
                target = own.copy()
                target[has] = cands.labels[choice[has]]
                moving = np.flatnonzero(target != own)
                if moving.size:
                    m_nodes, m_own = connected[moving], own[moving]
                    m_target, m_c = target[moving], c_v[moving]
                    if shares:
                        m_evict = evicting[moving]
                        keep = capped_inflow_mask(
                            m_target, m_c, local_net[m_target],
                            inflow_budget[m_target],
                        )
                    else:
                        keep = capped_inflow_mask(
                            m_target, m_c, weight[m_target],
                            np.full(m_target.size, bound, dtype=np.int64),
                        )
                    if (adaptive or sweep_frontier) and not keep.all():
                        # A capped node may succeed once the target drains.
                        dropped = m_nodes[~keep]
                        cancelled += int(dropped.size)
                        if sweep_frontier:
                            next_active[dropped] = True
                        elif defer:
                            pend_extra.append(dropped)
                    m_nodes, m_own = m_nodes[keep], m_own[keep]
                    m_target, m_c = m_target[keep], m_c[keep]
                    if shares:
                        m_evict = m_evict[keep]
                        np.add.at(local_net, m_target, m_c)
                        np.subtract.at(local_net, m_own, m_c)
                        np.add.at(local_out, m_own[m_evict], m_c[m_evict])
                    else:
                        np.subtract.at(weight, m_own, m_c)
                        np.add.at(weight, m_target, m_c)
                    labels[m_nodes] = m_target
                    changed_mask[m_nodes[interface[m_nodes]]] = True
                    moved += int(m_nodes.size)
                    if sweep_frontier and m_nodes.size:
                        next_active[m_nodes] = True
                        nbrs = gather_neighbors(m_nodes, xadj, adjncy)
                        local_nbrs = nbrs[nbrs < n_local]
                        next_active[local_nbrs] = True
                        # Later windows of this phase must rescan the
                        # movers' neighbours too (within-phase propagation).
                        active[local_nbrs] = True
                    elif defer and m_nodes.size:
                        # One deferred neighbour gather at the sweep
                        # switch replaces the per-chunk scatter above.
                        pend_nodes.append(m_nodes)
            if refine:
                # Isolated nodes: balance repair against the live views,
                # node-at-a-time (rare; matches the scan's first-minimal
                # choice, budget-capped in the share regime).
                for v in nodes[node_deg == 0].tolist():
                    own_v = int(labels[v])
                    c = int(vwgt_all[v])
                    if shares:
                        if (
                            exact[own_v] <= bound
                            or local_out[own_v] >= evict_budget[own_v]
                        ):
                            continue
                        ok = (local_net + c) <= inflow_budget
                        ok[own_v] = False
                        if not ok.any():
                            continue
                        b = int(np.argmin(np.where(ok, exact + local_net, _SENTINEL)))
                        local_net[own_v] -= c
                        local_net[b] += c
                        local_out[own_v] += c
                    else:
                        if weight[own_v] <= bound:
                            continue
                        ok = (weight + c) <= bound
                        ok[own_v] = False
                        if not ok.any():
                            continue
                        b = int(np.argmin(np.where(ok, weight, _SENTINEL)))
                        weight[own_v] -= c
                        weight[b] += c
                    labels[v] = b
                    moved += 1
                    if sweep_frontier:
                        next_active[v] = True
                    elif defer:
                        pend_nodes.append(np.array([v], dtype=np.int64))
                    if interface[v]:
                        changed_mask[v] = True
        backend.work(arcs_scanned)

        ghost_idx, ghost_vals = backend.exchange_labels(labels, changed_mask, delta)
        if ghost_idx.size:
            diff = labels[ghost_idx] != ghost_vals
            if refine:
                if diff.any():
                    if sweep_frontier:
                        next_active[
                            backend.ghost_change_sources(ghost_idx[diff])
                        ] = True
                    elif defer:
                        pend_ghost.append(ghost_idx[diff])
                labels[ghost_idx] = ghost_vals
            elif diff.any():
                old = labels[ghost_idx]
                g_w = vwgt_all[ghost_idx[diff]]
                np.subtract.at(weight, old[diff], g_w)
                np.add.at(weight, ghost_vals[diff], g_w)
                labels[ghost_idx[diff]] = ghost_vals[diff]
                if sweep_frontier:
                    next_active[backend.ghost_change_sources(ghost_idx[diff])] = True
                elif defer:
                    pend_ghost.append(ghost_idx[diff])

        if shares:
            # Restore exact weights with one reduction (Section IV-B).
            exact = backend.reduce_block_weights(labels, space)

        global_changed = backend.global_changed(moved, int(changed_mask.sum()))
        if controller is not None:
            # One small tagged allreduce per iteration: the only
            # cross-rank input to the controller, so every rank holds
            # the same decision state (uniform collective order is the
            # self-lint's invariant; the reduce is called here
            # unconditionally, on every rank, every phase).
            stats_vec = np.zeros(STATS_LEN, dtype=np.float64)
            stats_vec[S_UNIVERSE] = order.size
            if defer:
                # Switch signal: net movers over the phase (end labels
                # vs the phase-head snapshot), each bounding its reach
                # by 1 + degree.  A pure function of the label
                # trajectory, so every backend and rank count that
                # produces the same labels sees the same signal —
                # per-chunk mover/risky/capped counts do not qualify,
                # as transient flips depend on the chunk layout.
                net = np.flatnonzero(labels[:n_local] != base_labels)
                stats_vec[S_UPPER] = int(net.size) + int(degrees[net].sum())
            stats_vec[S_NEXT] = int(next_active.sum()) if sweep_frontier else 0
            stats_vec[S_ARCS] = arcs_scanned
            stats_vec[S_CHUNKS] = n_chunks
            stats_vec[S_CANCELLED] = cancelled
            stats_vec[S_SCANNED] = scanned
            stats_vec[S_WALL] = _time.perf_counter() - wall_t0
            controller.observe(backend.reduce_scan_stats(stats_vec))
            with TRACER.span(
                "lp.autotune", **backend.span_kwargs(),
                iteration=_phase, sweep=decision.sweep,
                chunk_request=decision.chunk, chunk_effective=phase_chunk,
                probe=decision.probe, locked=decision.locked,
                active_frac=round(decision.active_frac, 4),
                next_sweep=controller.sweep,
                cost_source=controller.cost_source,
            ):
                pass
        lp_span.set(moved=moved, arcs=arcs_scanned, chunks=n_chunks,
                    global_changed=global_changed, active=scanned,
                    frontier_frac=round(scanned / max(1, order.size), 4))
        if TRACER.enabled:
            lp_span.set(**memory_sample())
            if workspace is not None:
                lp_span.set(workspace_bytes=workspace.nbytes)
            TRACER.metrics.counter("lp.iterations").inc()
            TRACER.metrics.counter("lp.moved_nodes").inc(moved)
            _set_store_gauges(backend)
        lp_span.__exit__(None, None, None)
        if sweep_frontier:
            active, next_active = next_active, active
        elif defer and controller is not None and controller.sweep == SWEEP_FRONTIER:
            # Entering frontier dispatch next phase: materialise exactly
            # the active set the static frontier engine would have built
            # during this full sweep — movers and their neighbours (one
            # gather for the whole phase), risky and inflow-capped
            # nodes, and the local sources of changed ghosts.
            active.fill(False)
            if pend_nodes:
                movers_cat = np.concatenate(pend_nodes)
                active[movers_cat] = True
                nbrs = gather_neighbors(movers_cat, xadj, adjncy)
                active[nbrs[nbrs < n_local]] = True
            for extra in pend_extra:
                active[extra] = True
            if pend_ghost:
                active[
                    backend.ghost_change_sources(np.concatenate(pend_ghost))
                ] = True
        if global_changed == 0:
            break
    return labels


# ----------------------------------------------------------------------
# Scan engine (node-at-a-time, Python lists)
# ----------------------------------------------------------------------

def _scan_phases(
    backend: ExecutionBackend,
    labels: np.ndarray,
    bound: int,
    iterations: int,
    refine: bool,
    shares: bool,
    k: int | None,
    ordering: str,
    constraint: np.ndarray | None,
    tie_seed: int,
    delta: bool,
    vwgt_all: np.ndarray,
    interface: np.ndarray,
    band: np.ndarray | None,
) -> np.ndarray:
    """Node-at-a-time phases over plain Python lists (for strictly
    sequential semantics list indexing beats NumPy scalar indexing by a
    large factor)."""
    n_local = backend.n_local
    n_total = backend.n_total
    xadj = backend.xadj.tolist()
    adjncy = backend.adjncy.tolist()
    adjwgt = backend.adjwgt.tolist()
    label_list = labels.tolist()
    constraint_list = None if constraint is None else constraint.tolist()
    vwgt_list = vwgt_all.tolist()
    # Scalar randomness via the stdlib generator (much cheaper per call
    # than numpy's); seeded from the caller's generator for determinism.
    tie_rng = _pyrandom.Random(tie_seed)
    engine_name = "banded" if band is not None else "scan"
    mode_name = "refine" if refine else "cluster"
    track_changed = bool(interface.any())

    weight_list = local_net = local_out = inflow_budget = evict_budget = None
    exact: list[int] | None = None
    if refine and shares:
        space = int(k)
        exact = backend.reduce_block_weights(labels, space).tolist()
    else:
        space = (
            (max(label_list) + 1) if refine else backend.label_space(labels)
        )
        weight_list = [0] * space
        for v in range(n_total):
            weight_list[label_list[v]] += vwgt_list[v]

    if band is None and ordering in ("degree", "node"):
        static_order_list = (
            np.argsort(backend.degrees, kind="stable").tolist()
            if ordering == "degree"
            else list(range(n_local))
        )
    band_list = None if band is None else band.tolist()

    for _phase in range(max(0, iterations)):
        span_extra = {} if band_list is None else {"band_size": len(band_list)}
        lp_span = TRACER.span(
            "lp.iteration", **backend.span_kwargs(), engine=engine_name,
            mode=mode_name, iteration=_phase,
            constrained=constraint is not None, **span_extra,
        )
        lp_span.__enter__()
        if band_list is not None:
            order = [
                band_list[i]
                for i in backend.rng.permutation(len(band_list)).tolist()
            ]
        elif ordering in ("degree", "node"):
            order = static_order_list
        else:
            order = backend.rng.permutation(n_local).tolist()
        if shares:
            inflow_budget = [max(0.0, (bound - exact[b]) / backend.size) for b in range(space)]
            evict_budget = [max(0.0, (exact[b] - bound) / backend.size) for b in range(space)]
            local_net = [0] * space  # this PE's net weight added per block
            local_out = [0] * space  # weight evicted from overloaded blocks

        changed: list[int] = []
        arcs_scanned = 0
        moved = 0
        for v in order:
            begin, end = xadj[v], xadj[v + 1]
            own = label_list[v]
            if begin == end:
                # Isolated node: useless for the cut, but in refinement
                # mode it can still repair balance by moving to the
                # lightest eligible block when its own is overloaded
                # (band mode skips it: it is never near a boundary).
                if refine and band_list is None:
                    c_v = vwgt_list[v]
                    if shares:
                        if exact[own] > bound and local_out[own] < evict_budget[own]:
                            candidates = [
                                b for b in range(space)
                                if b != own and local_net[b] + c_v <= inflow_budget[b]
                            ]
                            if candidates:
                                target = min(
                                    candidates, key=lambda b: exact[b] + local_net[b]
                                )
                                local_net[own] -= c_v
                                local_net[target] += c_v
                                local_out[own] += c_v
                                label_list[v] = target
                                moved += 1
                                if track_changed and interface[v]:
                                    changed.append(v)
                    elif weight_list[own] > bound:
                        candidates = [
                            b for b in range(space)
                            if b != own and weight_list[b] + c_v <= bound
                        ]
                        if candidates:
                            target = min(candidates, key=weight_list.__getitem__)
                            weight_list[own] -= c_v
                            weight_list[target] += c_v
                            label_list[v] = target
                            moved += 1
                            if track_changed and interface[v]:
                                changed.append(v)
                continue
            arcs_scanned += end - begin
            my_constraint = constraint_list[v] if constraint_list is not None else None

            # Aggregate connection strength per neighbouring label.
            conn: dict[int, int] = {}
            for idx in range(begin, end):
                u = adjncy[idx]
                if my_constraint is not None and constraint_list[u] != my_constraint:
                    continue
                lab = label_list[u]
                conn[lab] = conn.get(lab, 0) + adjwgt[idx]

            c_v = vwgt_list[v]
            if not refine:
                evicting = False
            elif shares:
                evicting = exact[own] > bound and local_out[own] < evict_budget[own]
            else:
                evicting = weight_list[own] > bound
            if not evicting:
                # Staying is always permitted; connection to own block may
                # be zero if no neighbour shares it.
                conn.setdefault(own, 0)

            best_weight = -1
            best_labels: list[int] = []
            if shares:
                for lab, strength in conn.items():
                    if lab == own:
                        if evicting:
                            continue
                    elif local_net[lab] + c_v > inflow_budget[lab]:
                        continue  # this PE's share of block `lab` is used up
                    if strength > best_weight:
                        best_weight = strength
                        best_labels = [lab]
                    elif strength == best_weight:
                        best_labels.append(lab)
            else:
                for lab, strength in conn.items():
                    if lab == own:
                        if evicting:
                            continue
                    elif weight_list[lab] + c_v > bound:
                        continue  # ineligible: target would overload
                    if strength > best_weight:
                        best_weight = strength
                        best_labels = [lab]
                    elif strength == best_weight:
                        best_labels.append(lab)

            if not best_labels:
                continue  # evicting but nowhere eligible to go
            target = (
                best_labels[0]
                if len(best_labels) == 1
                else best_labels[tie_rng.randrange(len(best_labels))]
            )
            if target != own:
                if shares:
                    local_net[own] -= c_v
                    local_net[target] += c_v
                    if evicting:
                        local_out[own] += c_v
                else:
                    weight_list[own] -= c_v
                    weight_list[target] += c_v
                label_list[v] = target
                moved += 1
                if track_changed and interface[v]:
                    changed.append(v)
        backend.work(arcs_scanned)

        ghost_idx, ghost_vals = backend.exchange_labels_list(label_list, changed, delta)
        if refine:
            for gi, new_lab in zip(ghost_idx, ghost_vals):
                label_list[gi] = new_lab
        else:
            for gi, new_lab in zip(ghost_idx, ghost_vals):
                old = label_list[gi]
                if old == new_lab:
                    continue
                w = vwgt_list[gi]
                weight_list[old] -= w
                weight_list[new_lab] += w
                label_list[gi] = new_lab

        if shares:
            # Restore exact weights with one reduction (Section IV-B).
            exact = backend.reduce_block_weights(
                np.asarray(label_list, dtype=np.int64), space
            ).tolist()

        global_changed = backend.global_changed(moved, len(changed))
        lp_span.set(moved=moved, arcs=arcs_scanned, global_changed=global_changed)
        if TRACER.enabled:
            lp_span.set(**memory_sample())
            TRACER.metrics.counter("lp.iterations").inc()
            TRACER.metrics.counter("lp.moved_nodes").inc(moved)
        lp_span.__exit__(None, None, None)
        if global_changed == 0:
            break

    return np.asarray(label_list, dtype=np.int64)
