"""Execution backends: the substrate abstraction under the partition engine.

The engine drivers (:mod:`repro.engine.sclp`, :mod:`repro.engine.vcycle`)
are written once against the :class:`ExecutionBackend` protocol; the two
implementations bind them to the two substrates the paper contrasts:

* :class:`LocalBackend` — a NumPy CSR :class:`~repro.graph.csr.Graph` in
  one address space.  Every "communication" hook degenerates to the
  p = 1 identity: the halo exchange is a no-op, block-weight reduction
  is a ``bincount``, convergence is the local move count.
* :class:`SpmdBackend` — a :class:`~repro.dist.dgraph.DistGraph` under a
  :class:`~repro.dist.comm.SimComm`: ghost CSR with halo exchange, delta
  interface-label exchange, allreduce block weights, and simulated-time
  work accounting.

Every backend method that communicates is *collective over the backend's
communicator*: the drivers call them unconditionally on every rank, so
the lock-step protocol of the simulated runtime is preserved by
construction.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np

from ..graph.csr import Graph

__all__ = [
    "ExecutionBackend",
    "LocalBackend",
    "SpmdBackend",
    "ProcessBackend",
    "exchange_interface_labels",
    "make_dist_backend",
    "resolve_backend",
    "BACKENDS",
]

#: the three execution substrates, in the order the docs present them
BACKENDS = ("local", "spmd", "process")


def resolve_backend(explicit: str | None = None, default: str = "spmd") -> str:
    """Resolve the execution-backend selector.

    ``explicit`` wins when given.  Otherwise ``REPRO_BACKEND`` is
    consulted (``local`` | ``spmd`` | ``process``), falling back to
    ``default``.  Unknown values raise — a typo in the environment must
    not silently select a different substrate.
    """
    if explicit is not None:
        if explicit not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {explicit!r}"
            )
        return explicit
    raw = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not raw:
        return default
    if raw not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {BACKENDS}, got {raw!r}"
        )
    return raw


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the SCLP and V-cycle drivers need from an execution substrate.

    Array attributes describe the *local* subgraph (for the local backend
    that is the whole graph): CSR arrays over ``n_total`` node slots, of
    which the first ``n_local`` are owned and the rest are ghosts.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    degrees: np.ndarray
    n_local: int
    n_total: int
    size: int  # number of PEs sharing the budget (1 for local)
    tie_base: int  # local-to-global node id offset (hash tie-breaking)
    rng: np.random.Generator
    resident: bool  # arc arrays RAM-resident (False for out-of-core stores)

    def clamp_chunk(self, chunk: int) -> int: ...
    def store_stats(self): ...
    def node_weights(self) -> np.ndarray: ...
    def interface_mask(self) -> np.ndarray: ...
    def label_space(self, labels: np.ndarray) -> int: ...
    def work(self, units: int) -> None: ...
    def exchange_labels(
        self, labels: np.ndarray, changed_mask: np.ndarray, delta: bool
    ) -> tuple[np.ndarray, np.ndarray]: ...
    def exchange_labels_list(
        self, label_list: list, changed: list, delta: bool
    ) -> tuple[list, list]: ...
    def ghost_change_sources(self, ghost_idx: np.ndarray) -> np.ndarray: ...
    def reduce_block_weights(self, labels: np.ndarray, k: int) -> np.ndarray: ...
    def global_changed(self, moved: int, changed_count: int) -> int: ...
    def reduce_scan_stats(self, stats: np.ndarray) -> np.ndarray: ...
    def span_kwargs(self) -> dict: ...


_EMPTY = np.empty(0, dtype=np.int64)


class LocalBackend:
    """Single-address-space backend: the p = 1 degeneration of the SPMD hooks."""

    size = 1
    tie_base = 0

    def __init__(self, graph: Graph, rng: np.random.Generator):
        self.graph = graph
        self.rng = rng
        self.xadj = graph.xadj
        # Store-served arc arrays: plain ndarrays for a resident store
        # (bit-for-bit the pre-store behaviour), gather views otherwise —
        # the kernels only fancy-index these, so an out-of-core store
        # streams shards instead of materializing O(m) arrays.
        self.adjncy = graph.adjncy_view
        self.adjwgt = graph.adjwgt_view
        self.degrees = graph.degrees
        self.n_local = graph.num_nodes
        self.n_total = graph.num_nodes
        self.resident = graph.resident
        self._interface: np.ndarray | None = None

    def clamp_chunk(self, chunk: int) -> int:
        return int(self.graph.store.clamp_chunk(chunk))

    def store_stats(self):
        return self.graph.store.stats()

    def node_weights(self) -> np.ndarray:
        return np.asarray(self.graph.vwgt, dtype=np.int64)

    def interface_mask(self) -> np.ndarray:
        # No other rank exists, hence no interface: the convergence test
        # below therefore reduces to the local move count.
        if self._interface is None:
            self._interface = np.zeros(self.n_local, dtype=bool)
        return self._interface

    def label_space(self, labels: np.ndarray) -> int:
        return int(labels.max(initial=0)) + 1

    def work(self, units: int) -> None:
        pass

    def exchange_labels(
        self, labels: np.ndarray, changed_mask: np.ndarray, delta: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        return _EMPTY, _EMPTY

    def exchange_labels_list(
        self, label_list: list, changed: list, delta: bool
    ) -> tuple[list, list]:
        return [], []

    def ghost_change_sources(self, ghost_idx: np.ndarray) -> np.ndarray:
        return _EMPTY

    def reduce_block_weights(self, labels: np.ndarray, k: int) -> np.ndarray:
        return np.bincount(
            labels[: self.n_local], weights=self.graph.vwgt, minlength=k
        ).astype(np.int64)

    def global_changed(self, moved: int, changed_count: int) -> int:
        return moved

    def reduce_scan_stats(self, stats: np.ndarray) -> np.ndarray:
        # p = 1: the local stats vector already is the global sum.
        return stats

    def span_kwargs(self) -> dict:
        return {}


class SpmdBackend:
    """Distributed-memory backend over ``DistGraph`` + ``SimComm``."""

    # DistGraph slices are in-RAM (possibly shared-memory) arrays.
    resident = True

    def clamp_chunk(self, chunk: int) -> int:
        return chunk

    def store_stats(self):
        return None

    def __init__(self, dgraph, comm, delta_exchange: bool = True):
        self.dgraph = dgraph
        self.comm = comm
        self.delta_exchange = delta_exchange
        self.rng = comm.rng
        self.size = comm.size
        self.tie_base = int(dgraph.first)
        self.xadj = dgraph.xadj
        self.adjncy = dgraph.adjncy
        self.adjwgt = dgraph.adjwgt
        self.degrees = dgraph.degrees
        self.n_local = dgraph.n_local
        self.n_total = dgraph.n_total

    def node_weights(self) -> np.ndarray:
        vwgt_all = np.zeros(self.n_total, dtype=np.int64)
        vwgt_all[: self.n_local] = self.dgraph.vwgt
        self.dgraph.halo_exchange(self.comm, vwgt_all)
        return vwgt_all

    def interface_mask(self) -> np.ndarray:
        return self.dgraph.interface_mask()

    def label_space(self, labels: np.ndarray) -> int:
        # Cluster ids are global fine node ids; entries of clusters never
        # seen locally stay 0, like the missing keys of a sparse view.
        return max(int(self.dgraph.n_global), int(labels.max(initial=0)) + 1)

    def work(self, units: int) -> None:
        self.comm.work(units)

    def exchange_labels(
        self, labels: np.ndarray, changed_mask: np.ndarray, delta: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        return exchange_interface_labels(
            self.dgraph, self.comm, labels, changed_mask, delta
        )

    def exchange_labels_list(
        self, label_list: list, changed: list, delta: bool
    ) -> tuple[list, list]:
        # List-flavoured variant for the scan engine: the conversion cost
        # is paid once per phase, only on this backend.
        changed_mask = np.zeros(self.n_local, dtype=bool)
        changed_mask[changed] = True
        labels_arr = np.asarray(label_list, dtype=np.int64)
        ghost_idx, values = self.exchange_labels(labels_arr, changed_mask, delta)
        return ghost_idx.tolist(), values.tolist()

    def ghost_change_sources(self, ghost_idx: np.ndarray) -> np.ndarray:
        from .kernels import gather_neighbors

        gxadj, gsrc = self.dgraph.ghost_sources()
        return gather_neighbors(ghost_idx - self.n_local, gxadj, gsrc)

    def reduce_block_weights(self, labels: np.ndarray, k: int) -> np.ndarray:
        local = np.bincount(
            labels[: self.n_local], weights=self.dgraph.vwgt, minlength=k
        ).astype(np.int64)
        return self.comm.allreduce(local)

    def global_changed(self, moved: int, changed_count: int) -> int:
        return int(self.comm.allreduce(int(changed_count)))

    def reduce_scan_stats(self, stats: np.ndarray) -> np.ndarray:
        # Tagged so the autotune reduction stays distinguishable from the
        # convergence/weight allreduces in CommStats.per_op and traces.
        return self.comm.allreduce(stats, tag="lp.autotune")

    def span_kwargs(self) -> dict:
        return {"comm": self.comm}


def make_dist_backend(dgraph, comm, delta_exchange: bool = True) -> "SpmdBackend":
    """The distributed backend matching ``comm``'s substrate.

    A :class:`~repro.dist.proc_comm.ProcComm` gets a
    :class:`ProcessBackend`, anything else a :class:`SpmdBackend` — the
    hooks are identical either way (ProcessBackend only names the
    substrate); this keeps traces and reprs honest about where a run
    actually executed.
    """
    from ..dist.proc_comm import ProcComm

    cls = ProcessBackend if isinstance(comm, ProcComm) else SpmdBackend
    return cls(dgraph, comm, delta_exchange)


class ProcessBackend(SpmdBackend):
    """Distributed-memory backend over real OS processes.

    The engine hooks are exactly :class:`SpmdBackend`'s — that class is
    communicator-agnostic, touching only the collective surface — bound
    to a :class:`~repro.dist.proc_comm.ProcComm` inside a worker of
    :func:`~repro.dist.runtime.run_spmd_processes`.  The ``DistGraph``
    is sliced from the shared-memory CSR graph the worker attached, so
    the global adjacency is mapped once machine-wide instead of copied
    per rank.  Simulated clocks, stats and labels are bit-identical to
    the thread backend (test-enforced); only the wall clock differs.
    """


def exchange_interface_labels(
    dgraph,
    comm,
    labels: np.ndarray,
    changed_mask: np.ndarray,
    delta: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Ship changed interface labels to adjacent PEs; validate and locate.

    Returns ``(ghost_idx, values)``: the local ghost slots the received
    updates belong to and their new labels, so callers can fold them into
    whatever weight view they maintain.

    Both wire encodings are *positional*: ``send_nodes[q]`` on the
    sender and ``recv_ghosts`` for ``q`` on the receiver list the same
    interface nodes in the same (ascending global id) order, the
    symmetry :meth:`DistGraph.halo_exchange` already relies on.  With
    ``delta`` (the default) each destination gets ``(positions: int32,
    labels: int64)`` pairs for the changed labels — 12 bytes per change
    instead of 16 for explicit global ids — unless a dense 8-bytes-per-
    interface-node label array is smaller (early iterations, where most
    labels change).  Received positions are validated against the shared
    interface size; an out-of-range position or a mis-sized dense
    payload raises, naming the sender, instead of silently corrupting a
    neighbouring ghost slot.
    """
    per_dest: list[object] = [None] * comm.size
    for q, nodes in zip(dgraph.send_ranks.tolist(), dgraph.send_nodes):
        if delta:
            pos = np.flatnonzero(changed_mask[nodes])
            if pos.size * 12 < nodes.size * 8:
                per_dest[q] = (pos.astype(np.int32), labels[nodes[pos]])
                continue
        per_dest[q] = labels[nodes]
    received = comm.alltoall(per_dest, tag="lp.labels")
    ghosts_from = {
        q: g for q, g in zip(dgraph.send_ranks.tolist(), dgraph.recv_ghosts)
    }
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for src, payload in enumerate(received):
        if payload is None:
            continue
        ghosts = ghosts_from.get(src)
        if ghosts is None:
            raise ValueError(
                f"rank {comm.rank} received an interface label payload from "
                f"rank {src}, with which it shares no interface"
            )
        if isinstance(payload, tuple):
            pos, values = payload
            if pos.size == 0:
                continue
            pos = pos.astype(np.int64)
            if int(pos.max()) >= ghosts.size or int(pos.min()) < 0:
                raise ValueError(
                    f"rank {comm.rank} received a delta interface label from "
                    f"rank {src} at position {int(pos.max())}, outside the "
                    f"{ghosts.size}-entry interface shared with that rank "
                    "(inconsistent send lists or a label update for a "
                    "non-interface node)"
                )
            idx_parts.append(ghosts[pos])
            val_parts.append(np.asarray(values, dtype=np.int64))
        else:
            values = np.asarray(payload, dtype=np.int64)
            if values.size != ghosts.size:
                raise ValueError(
                    f"rank {comm.rank} received a dense interface payload of "
                    f"{values.size} labels from rank {src}, which does not "
                    f"match the {ghosts.size}-entry interface shared with "
                    "that rank (inconsistent send lists or a label update "
                    "for a non-interface node)"
                )
            idx_parts.append(ghosts)
            val_parts.append(values)
    if not idx_parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(idx_parts), np.concatenate(val_parts)
