"""Backend-abstracted partition engine.

One SCLP iteration driver (:func:`~repro.engine.sclp.run_sclp`) and one
multilevel V-cycle driver (:func:`~repro.engine.vcycle.run_vcycle`),
parameterized by the :class:`~repro.engine.backend.ExecutionBackend`
protocol; :class:`~repro.engine.backend.LocalBackend` binds them to the
sequential NumPy substrate, :class:`~repro.engine.backend.SpmdBackend`
to the simulated distributed-memory one, and
:class:`~repro.engine.backend.ProcessBackend` to real OS processes over
shared-memory CSR segments (``REPRO_BACKEND=local|spmd|process``, see
:func:`~repro.engine.backend.resolve_backend`).  The legacy entry
points in :mod:`repro.core` and :mod:`repro.dist` are thin wrappers
over these.
"""

from .autotune import AutotuneController, PhaseDecision, resolve_cost_source
from .backend import (
    BACKENDS,
    ExecutionBackend,
    LocalBackend,
    ProcessBackend,
    SpmdBackend,
    exchange_interface_labels,
    make_dist_backend,
    resolve_backend,
)
from .kernels import ADAPTIVE_ENGINE, ENGINES, IterationWorkspace, resolve_engine
from .sclp import run_sclp
from .vcycle import VcycleBackend, VcycleResult, run_coarsening, run_vcycle

__all__ = [
    "ADAPTIVE_ENGINE",
    "AutotuneController",
    "BACKENDS",
    "ENGINES",
    "ExecutionBackend",
    "IterationWorkspace",
    "LocalBackend",
    "PhaseDecision",
    "ProcessBackend",
    "SpmdBackend",
    "exchange_interface_labels",
    "make_dist_backend",
    "resolve_backend",
    "resolve_cost_source",
    "resolve_engine",
    "run_sclp",
    "run_vcycle",
    "run_coarsening",
    "VcycleBackend",
    "VcycleResult",
]
