"""Adaptive SCLP engine controller: sweep switching and chunk tuning.

ROADMAP's "adaptive engine auto-tuning" item, and the reason engine
choice can disappear as a user-facing knob: the static ``full`` and
``frontier`` engines are regime-specific (``BENCH_lp.json``: frontier
is ~0.8x at three iterations where every node is active, ~1.3x once the
active set has collapsed), while the papers (arXiv:1404.4797,
arXiv:1402.3281) assume the active set shrinks geometrically.  The
adaptive engine *observes* that shrinkage and re-dispatches each
iteration.

The controller in this module is deliberately pure decision logic — it
never communicates, never reads rank-local state, and never consults a
clock on its own.  The SCLP driver allreduces one small per-phase stats
vector through the backend hook
(:meth:`~repro.engine.backend.ExecutionBackend.reduce_scan_stats`, a
collective on the SPMD backends, the identity at p = 1) and feeds the
*global sums* to :meth:`AutotuneController.observe`; every rank
therefore holds the same controller state and reaches the same
(sweep, chunk) decision on every iteration by construction.  That is
the whole rank-divergence story: the only cross-rank input is the
reduction, which the SPMD self-lint verifies is called in uniform
collective order.

Two decisions are made per iteration:

* **Sweep mode** — ``full`` scans every node; ``frontier`` filters to
  the active set.  Entry (full -> frontier) triggers when the
  *upper-bound* estimate of the next active fraction drops below
  :data:`~repro.engine.kernels.FRONTIER_FULL_SWEEP_FRACTION`; exit
  (frontier -> full) when the *exact* active fraction rises to
  :data:`EXIT_FRACTION`.  The gap between the two thresholds is the
  hysteresis band that keeps the mode from flapping on noisy
  iterations.  The entry signal is an upper bound (movers contribute
  ``1 + degree``, counting every neighbour they could activate, plus
  the risky and inflow-capped counts), so entering is always sound:
  the true active fraction can only be smaller.
* **Chunk size** — the first :data:`len(CHUNK_PROBE_STEPS) <CHUNK_PROBE_STEPS>`
  iterations probe multiplicatively larger power-of-two chunk requests
  (x1, x2, x4 of the resolved base), then lock in the cheapest probe
  for the rest of the run.  The default cost is a deterministic *work
  model* — per-arc cost with a fixed per-chunk dispatch overhead and a
  penalty per inflow-cancelled move — scored against the requested
  chunk and the global scan universe, both p-invariant quantities, so
  the locked chunk does not depend on rank count or wall noise.
  ``REPRO_LP_AUTOTUNE_COST=wall`` opts into measured wall seconds per
  arc instead (honest about the host, but not reproducible across
  machines; the default work model is).

Every decision is surfaced as ``lp.autotune`` span attributes by the
driver so ``repro analyze`` can reconstruct the trajectory.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from .kernels import FRONTIER_FULL_SWEEP_FRACTION

__all__ = [
    "AutotuneController",
    "PhaseDecision",
    "SWEEP_FULL",
    "SWEEP_FRONTIER",
    "ENTRY_FRACTION",
    "EXIT_FRACTION",
    "CHUNK_PROBE_STEPS",
    "CHUNK_OVERHEAD",
    "CANCEL_PENALTY",
    "STATS_LEN",
    "S_UNIVERSE",
    "S_UPPER",
    "S_NEXT",
    "S_ARCS",
    "S_CHUNKS",
    "S_CANCELLED",
    "S_SCANNED",
    "S_WALL",
    "COST_SOURCES",
    "resolve_cost_source",
]

#: sweep-mode names as recorded in decision traces and span attrs
SWEEP_FULL = "full"
SWEEP_FRONTIER = "frontier"

#: full -> frontier when the upper-bound active fraction drops below this
ENTRY_FRACTION = FRONTIER_FULL_SWEEP_FRACTION
#: frontier -> full when the exact active fraction rises back to this;
#: the [ENTRY_FRACTION, EXIT_FRACTION) gap is the hysteresis band
EXIT_FRACTION = 0.625

#: multiplicative chunk-request probe schedule (applied to the base chunk)
CHUNK_PROBE_STEPS = (1, 2, 4)
#: work-model cost of dispatching one chunk, in arc-scan units
CHUNK_OVERHEAD = 512.0
#: work-model cost of one inflow-cancelled move (wasted decision), in arcs
CANCEL_PENALTY = 8.0

# Slots of the per-phase stats vector the driver allreduces (elementwise
# global sums).  One flat float64 vector: a single small collective per
# iteration instead of one per quantity.
S_UNIVERSE = 0  #: nodes in the phase's scan order (active or not)
S_UPPER = 1  #: upper bound on the next active set (full sweep only)
S_NEXT = 2  #: exact next-active count (frontier sweep only)
S_ARCS = 3  #: arcs actually scanned
S_CHUNKS = 4  #: chunk windows dispatched
S_CANCELLED = 5  #: moves cancelled by the inflow cap
S_SCANNED = 6  #: nodes actually scanned
S_WALL = 7  #: wall seconds spent in the phase (summed over ranks)
STATS_LEN = 8

#: recognised chunk-cost sources (``REPRO_LP_AUTOTUNE_COST``)
COST_SOURCES = ("work", "wall")


def resolve_cost_source(explicit: str | None = None) -> str:
    """Resolve the chunk-tuning cost source.

    ``explicit`` wins when given; otherwise ``REPRO_LP_AUTOTUNE_COST``
    is consulted, falling back to the deterministic ``work`` model.
    Unknown values raise — a typo must not silently change how the
    engine tunes itself.
    """
    if explicit is not None:
        if explicit not in COST_SOURCES:
            raise ValueError(
                f"autotune cost source must be one of {COST_SOURCES}, "
                f"got {explicit!r}"
            )
        return explicit
    raw = os.environ.get("REPRO_LP_AUTOTUNE_COST", "").strip().lower()
    if not raw:
        return COST_SOURCES[0]
    if raw not in COST_SOURCES:
        raise ValueError(
            f"REPRO_LP_AUTOTUNE_COST must be one of {COST_SOURCES}, "
            f"got {raw!r}"
        )
    return raw


@dataclass(frozen=True)
class PhaseDecision:
    """One iteration's dispatch decision, identical on every rank."""

    iteration: int
    sweep: str  #: SWEEP_FULL or SWEEP_FRONTIER
    chunk: int  #: *requested* chunk (``effective_chunk`` may clamp it)
    probe: bool  #: True while this chunk is a tuning probe
    locked: bool  #: True once the chunk search has locked in
    active_frac: float  #: the (bounded) fraction that drove the sweep choice


class AutotuneController:
    """Per-level decision state for the adaptive SCLP engine.

    One controller per :func:`~repro.engine.sclp.run_sclp` call.  The
    driver alternates ``decide()`` (before the phase) and ``observe()``
    (after the phase, with the *globally reduced* stats vector); all
    state transitions are pure functions of those global sums and the
    iteration index, which is what makes the decision trace identical
    across the Local, Spmd and Process backends.
    """

    def __init__(
        self,
        chunk: int,
        *,
        entry_fraction: float = ENTRY_FRACTION,
        exit_fraction: float = EXIT_FRACTION,
        cost_source: str | None = None,
    ):
        if exit_fraction < entry_fraction:
            raise ValueError(
                "hysteresis requires exit_fraction >= entry_fraction, got "
                f"{exit_fraction} < {entry_fraction}"
            )
        base = max(2, int(chunk))
        self.candidates = tuple(base * step for step in CHUNK_PROBE_STEPS)
        self.entry_fraction = float(entry_fraction)
        self.exit_fraction = float(exit_fraction)
        self.cost_source = resolve_cost_source(cost_source)
        self._sweep = SWEEP_FULL
        self._locked_chunk: int | None = None
        self._active_frac = 1.0  # nothing observed yet: everything active
        self._costs: list[tuple[float, int]] = []
        self._iteration = 0  # the next phase to decide for
        self._pending: PhaseDecision | None = None

    @property
    def sweep(self) -> str:
        """The sweep the *next* ``decide()`` will pick (post-hysteresis)."""
        return self._sweep

    @property
    def locked_chunk(self) -> int | None:
        """The locked chunk request, or ``None`` while still probing."""
        return self._locked_chunk

    def decide(self) -> PhaseDecision:
        """Name the upcoming phase's sweep mode and chunk request."""
        if self._locked_chunk is not None:
            chunk, probe = self._locked_chunk, False
        else:
            chunk = self.candidates[min(self._iteration, len(self.candidates) - 1)]
            probe = True
        decision = PhaseDecision(
            iteration=self._iteration,
            sweep=self._sweep,
            chunk=int(chunk),
            probe=probe,
            locked=self._locked_chunk is not None,
            active_frac=self._active_frac,
        )
        self._pending = decision
        return decision

    def observe(self, stats) -> None:
        """Fold one phase's globally-reduced stats vector into the state.

        ``stats`` is the elementwise global sum (see the ``S_*`` slots);
        every rank passes the same vector, so every rank transitions to
        the same state.
        """
        decision = self._pending
        if decision is None:
            raise RuntimeError("observe() without a preceding decide()")
        self._pending = None
        universe = max(1.0, float(stats[S_UNIVERSE]))
        if self._locked_chunk is None:
            self._costs.append((self._cost(decision.chunk, stats), decision.chunk))
            if len(self._costs) >= len(self.candidates):
                # Cheapest probe wins; ties go to the smallest chunk
                # (least phase-internal staleness for the same cost).
                self._locked_chunk = min(self._costs)[1]
        if decision.sweep == SWEEP_FULL:
            frac = float(stats[S_UPPER]) / universe
            if frac < self.entry_fraction:
                self._sweep = SWEEP_FRONTIER
        else:
            frac = float(stats[S_NEXT]) / universe
            if frac >= self.exit_fraction:
                self._sweep = SWEEP_FULL
        self._active_frac = min(1.0, frac)
        self._iteration += 1

    def _cost(self, chunk: int, stats) -> float:
        """Score one probe.  Smaller is better.

        The work model charges every arc once, every *modelled* chunk
        dispatch (``ceil(universe / requested)`` — the requested chunk
        against the global universe, deliberately not the per-rank
        effective windows, so the score is p-invariant) a fixed
        overhead, and every inflow-cancelled move a staleness penalty;
        the sum is normalised per scanned arc.  The ``wall`` source
        replaces all of that with measured seconds per arc.
        """
        arcs = max(1.0, float(stats[S_ARCS]))
        if self.cost_source == "wall":
            return float(stats[S_WALL]) / arcs
        universe = max(1.0, float(stats[S_UNIVERSE]))
        dispatches = math.ceil(universe / max(1, chunk))
        return 1.0 + (
            CHUNK_OVERHEAD * dispatches + CANCEL_PENALTY * float(stats[S_CANCELLED])
        ) / arcs
