"""The backend-abstracted multilevel V-cycle driver (paper §III, §IV-E).

One driver owns the multilevel skeleton for both pipelines — the
coarsening level loop (per-level bound adaptation, stall detection,
constraint projection), the initial-partitioning hand-off, and the
uncoarsening loop (project → refine per level) — together with all of
its pipeline spans, events and metrics, so the sequential and the
distributed run emit the same observability schema from the same code.

Everything substrate-specific is a :class:`VcycleBackend` hook: how a
level is clustered and contracted, what "global node count" means, how
the coarsest graph is partitioned (direct KaFFPa vs replica + KaFFPaE),
how a partition is projected and refined, how cuts are measured, and
what bookkeeping (memory-budget charges, simulated clocks) rides along.
:class:`repro.core.multilevel.LocalVcycleBackend` binds the hooks to the
sequential substrate, :class:`repro.dist.dist_partitioner.SpmdVcycleBackend`
to the simulated distributed-memory one.

Hooks that communicate are collective over the backend's communicator
and are called unconditionally on every rank (tracing-only hooks are
gated on the process-global ``TRACER.enabled``), so the lock-step
protocol of the simulated runtime is preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from ..obsv.tracer import _NOOP_SPAN, TRACER
from ..perf.rss import memory_probe

__all__ = ["VcycleBackend", "VcycleResult", "run_coarsening", "run_vcycle"]


class VcycleBackend(Protocol):
    """What the V-cycle driver needs from a pipeline substrate.

    Level objects are opaque to the driver: whatever :meth:`contract`
    returns is stored and handed back to the level-scoped hooks.
    Likewise the partition state — a plain partition array sequentially,
    a ghost-extended label array in the SPMD pipeline — only flows
    between :meth:`initial_partition`, :meth:`project`,
    :meth:`refine_level` and the cut probes.
    """

    @property
    def emits_events(self) -> bool: ...  # True on exactly one rank
    def span_kwargs(self) -> dict: ...
    def clock(self) -> float: ...  # simulated seconds (0.0 sequentially)

    # --- coarsening ---
    def begin_coarsening(self) -> None: ...
    def current_size(self) -> int: ...  # global nodes of the current level
    def max_node_weight(self) -> int: ...  # global max c(v), may reduce
    def cluster(self, level_bound: int) -> Any: ...
    def contract(self, labels: Any) -> Any: ...
    def coarse_size(self, level: Any) -> int: ...
    def advance(self, level: Any) -> None: ...  # current graph := coarse
    def coarsen_level_stats(self, level: Any) -> dict: ...
    def charge_level(self, level: Any) -> None: ...
    def project_constraint(self, level: Any) -> None: ...

    # --- initial partitioning ---
    def initial_partition(self) -> Any: ...
    def initial_stats(self, partition: Any) -> tuple[int, int]: ...

    # --- uncoarsening ---
    def coarsest_refine(self, partition: Any) -> Any: ...
    def initial_cut_fields(
        self, partition: Any, stats: tuple[int, int]
    ) -> dict: ...
    def project(self, level: Any, partition: Any) -> Any: ...
    def refine_level(self, level: Any, partition: Any) -> Any: ...
    def level_cut(self, level: Any, partition: Any) -> int: ...
    def level_nodes(self, level: Any) -> int: ...
    def release_level(self) -> None: ...


@dataclass
class VcycleResult:
    """Outcome of one driven V-cycle."""

    partition: Any  # backend-specific partition state on the finest graph
    levels: list  # committed (non-stalled) contraction levels, finest first
    coarse_sizes: list[int]  # global node count after each level
    phase_times: dict[str, float]  # simulated clock per pipeline phase


def run_coarsening(
    backend: VcycleBackend,
    config,
    max_cluster_weight: int,
    lmax: int,
    *,
    cycle: int | None = None,
    top: bool = True,
) -> tuple[list, list[int]]:
    """The coarsening level loop; returns (levels, coarse_sizes).

    Repeatedly cluster and contract until the graph fits the initial
    partitioner (``config.coarsest_target()`` nodes) or a level fails to
    shrink it by ``config.min_shrink_factor`` (stall).  The per-level
    cluster bound tracks coarse node growth (at least a pairwise merge
    must stay possible) but is capped well below ``lmax``: coarse nodes
    near ``lmax`` would make balanced initial partitioning a bin-packing
    problem with no feasible solution at small eps.
    """
    target = config.coarsest_target()
    cap = max(2, lmax // 4)
    levels: list = []
    coarse_sizes: list[int] = []
    backend.begin_coarsening()
    while backend.current_size() > target:
        level_span = (
            TRACER.span(
                "coarsen.level", **backend.span_kwargs(), cycle=cycle,
                level=len(levels),
            )
            if top else _NOOP_SPAN
        )
        level_span.__enter__()
        level_bound = min(
            max(max_cluster_weight, 2 * backend.max_node_weight()), cap
        )
        fine_size = backend.current_size()
        labels = backend.cluster(level_bound)
        level = backend.contract(labels)
        if backend.coarse_size(level) >= config.min_shrink_factor * fine_size:
            # Ineffective level: stop rather than loop forever, and
            # partition what we have.
            level_span.set(stalled=True)
            level_span.__exit__(None, None, None)
            break
        levels.append(level)
        backend.advance(level)
        coarse_sizes.append(backend.coarse_size(level))
        if top and TRACER.enabled:
            stats = backend.coarsen_level_stats(level)
            shrink = stats["fine_nodes"] / max(1, stats["coarse_nodes"])
            level_span.set(
                fine_nodes=stats["fine_nodes"], coarse_nodes=stats["coarse_nodes"]
            )
            if backend.emits_events:
                TRACER.event(
                    "coarsen.level", cycle=cycle, level=len(levels) - 1,
                    **stats, shrink=shrink,
                )
                TRACER.metrics.counter("coarsen.levels").inc()
                TRACER.metrics.histogram("coarsen.shrink").observe(shrink)
        backend.charge_level(level)
        backend.project_constraint(level)
        level_span.__exit__(None, None, None)
    return levels, coarse_sizes


def run_vcycle(
    backend: VcycleBackend,
    config,
    lmax: int,
    max_cluster_weight: int,
    *,
    cycle: int | None = None,
    top: bool = True,
    wcycle_hook: Callable[[Any, Any], Any] | None = None,
) -> VcycleResult:
    """Drive one multilevel cycle: coarsen → initial partition → uncoarsen.

    ``top`` gates spans, events and metrics: inner W-cycle recursions
    pass ``top=False`` so phase times are not double-counted.
    ``wcycle_hook(level, partition)``, when given, runs after each
    level's refinement and may return an improved partition (the
    sequential W-cycle recursion).
    """
    phase_times: dict[str, float] = {}

    # Phase-boundary memory telemetry (tracing-only, uniform across
    # ranks: TRACER.enabled is process-global, so the probe never
    # diverges the collective schedule).
    traced = top and TRACER.enabled

    t0 = backend.clock()
    coarsen_span = (
        TRACER.span("coarsening", **backend.span_kwargs(), cycle=cycle)
        if top else _NOOP_SPAN
    )
    coarsen_span.__enter__()
    mem = memory_probe() if traced else None
    levels, coarse_sizes = run_coarsening(
        backend, config, max_cluster_weight, lmax, cycle=cycle, top=top
    )
    coarsen_span.set(levels=len(levels))
    if mem is not None:
        coarsen_span.set(**mem())
    coarsen_span.__exit__(None, None, None)
    phase_times["coarsening"] = backend.clock() - t0

    t0 = backend.clock()
    init_span = (
        TRACER.span("initial", **backend.span_kwargs(), cycle=cycle)
        if top else _NOOP_SPAN
    )
    init_span.__enter__()
    mem = memory_probe() if traced else None
    partition = backend.initial_partition()
    init_stats: tuple[int, int] | None = None
    if top and TRACER.enabled:
        init_stats = backend.initial_stats(partition)
        init_span.set(nodes=init_stats[0], cut=init_stats[1])
    if mem is not None:
        init_span.set(**mem())
    init_span.__exit__(None, None, None)
    phase_times["initial"] = backend.clock() - t0

    t0 = backend.clock()
    refine_span = (
        TRACER.span("refinement", **backend.span_kwargs(), cycle=cycle)
        if top else _NOOP_SPAN
    )
    refine_span.__enter__()
    mem = memory_probe() if traced else None
    partition = backend.coarsest_refine(partition)
    if top and TRACER.enabled and init_stats is not None and backend.emits_events:
        TRACER.event(
            "initial.cut", cycle=cycle,
            **backend.initial_cut_fields(partition, init_stats),
        )
    for level_idx in range(len(levels) - 1, -1, -1):
        level = levels[level_idx]
        level_span = (
            TRACER.span(
                "uncoarsen.level", **backend.span_kwargs(), cycle=cycle,
                level=level_idx,
            )
            if top else _NOOP_SPAN
        )
        level_span.__enter__()
        partition = backend.project(level, partition)
        cut_projected: int | None = None
        if top and TRACER.enabled:
            cut_projected = backend.level_cut(level, partition)
        partition = backend.refine_level(level, partition)
        if wcycle_hook is not None:
            partition = wcycle_hook(level, partition)
        if top and TRACER.enabled:
            cut_refined = backend.level_cut(level, partition)
            level_span.set(cut_projected=cut_projected, cut_refined=cut_refined)
            if backend.emits_events:
                TRACER.event(
                    "uncoarsen.level", cycle=cycle, level=level_idx,
                    nodes=backend.level_nodes(level),
                    cut_projected=cut_projected, cut_refined=cut_refined,
                )
                TRACER.metrics.gauge("partition.cut").set(cut_refined)
        level_span.__exit__(None, None, None)
        backend.release_level()
    if mem is not None:
        refine_span.set(**mem())
    refine_span.__exit__(None, None, None)
    phase_times["refinement"] = backend.clock() - t0

    return VcycleResult(partition, levels, coarse_sizes, phase_times)
