"""Vectorised, chunked gain-evaluation kernels for SCLP (the hot path).

Both label-propagation engines — the sequential scan of
:mod:`repro.core.label_propagation` and the per-PE scans of
:mod:`repro.dist.dist_lp` — evaluate the same move for every visited node
``v``: aggregate the connection strength ``omega({(v,u) : u in N(v) and
label(u) = l})`` per neighbouring label ``l``, drop ineligible labels
(size bound / budget share), and move to the strongest remaining label,
ties broken uniformly at random.  The original engines do this one node
at a time over Python lists; the kernels here do it for a *chunk* of
nodes at once with NumPy:

* neighbour-label aggregation is sort-based: one stable
  :func:`numpy.lexsort` over ``(label, node)`` followed by
  :func:`numpy.add.reduceat` over group boundaries yields every
  ``(node, label)`` connection strength of the chunk;
* the eligible-argmax with ordered tie-breaking is a masked segmented
  maximum (ineligible candidates are forced below every real strength)
  plus a segmented rank so that tied labels keep the *dict insertion
  order* of the scalar scan — first occurrence in the adjacency list,
  own label last when no neighbour carries it;
* weight/budget bookkeeping is applied **between** chunks: within a
  chunk every node sees the label array and the weight view as of the
  chunk start, and :func:`capped_inflow_mask` cancels the tail of the
  chunk's moves into any label whose remaining capacity they would
  overrun, so hard bounds survive the staleness.

``chunk_size = 1`` therefore reproduces the node-at-a-time semantics
*bit for bit* (same labels, same tie-RNG stream — test-enforced), while
larger chunks trade phase-internal staleness for throughput.  The
distributed engine already tolerates exactly this kind of staleness
across PEs (ghost labels are one phase old, Section IV-A of the paper);
chunking applies the same idea within a PE's own scan.

Engine selection: ``resolve_chunk_size`` maps an explicit value, the
``REPRO_LP_CHUNK`` environment variable, or the built-in default to a
chunk size; ``0`` selects the legacy scalar scan.  Orthogonally,
``resolve_engine`` picks between the ``full`` sweep (every phase scans
every node), the ``frontier`` engine (phases after the first rescan
only the *active set*), and the default ``adaptive`` engine (the
runtime controller of :mod:`repro.engine.autotune` switches between the
two per iteration), honouring ``REPRO_LP_ENGINE`` and the legacy
``REPRO_LP_FRONTIER``.

The frontier engine is label-identical to the full sweep per iteration.
That hinges on the hash tie-break (:func:`candidate_tie_hash`): because
a node's decision is a pure function of its neighbourhood snapshot —
no shared RNG stream advanced per visit — scanning *fewer* nodes cannot
perturb the decisions of the nodes that are scanned.  It remains to
show a skipped node would not have moved, which
:func:`pick_targets_hashed` makes checkable at scan time: alongside the
chosen candidate it flags nodes as *risky* when some ineligible label
ties or beats the choice.  For an unflagged stay-put node the choice is
an argmax over ``(strength, hash)`` in which every potential winner was
eligible and lost to the own label; eligibility of losers can only
flip between phases if weights change, and a flip from ineligible to
eligible matters only for the flagged labels — so while the node's
neighbourhood is label-stable, its decision is provably ``stay``.  The
active set therefore needs exactly: last phase's movers and their
neighbours, nodes whose ghost neighbours changed, risky/capped nodes,
and (refine mode) members of over-budget blocks.
"""

from __future__ import annotations

import os
import random as _pyrandom
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "SCAN_ENGINE",
    "FULL_ENGINE",
    "FRONTIER_ENGINE",
    "ADAPTIVE_ENGINE",
    "ENGINES",
    "FRONTIER_FULL_SWEEP_FRACTION",
    "IterationWorkspace",
    "resolve_chunk_size",
    "resolve_engine",
    "effective_chunk",
    "make_tie_breaker",
    "candidate_tie_hash",
    "ChunkCandidates",
    "ChunkPlan",
    "plan_chunk",
    "aggregate_candidates",
    "gather_candidates",
    "gather_neighbors",
    "pick_targets",
    "pick_targets_hashed",
    "capped_inflow_mask",
    "chunk_ranges",
]

#: default nodes per chunk when neither the caller nor the environment says
#: otherwise — large enough that NumPy dominates the Python loop overhead,
#: small enough that the weight view refreshes many times per phase
DEFAULT_CHUNK_SIZE = 1024

#: sentinel chunk size selecting the legacy node-at-a-time scan engine
SCAN_ENGINE = 0

#: sweep engine: every phase scans every (eligible) local node
FULL_ENGINE = "full"

#: active-set engine: phases after the first rescan only the frontier
FRONTIER_ENGINE = "frontier"

#: auto-tuning engine: a runtime controller switches each iteration
#: between the full sweep and frontier dispatch from the allreduced
#: global active fraction, and tunes the chunk size during the first
#: iterations (see :mod:`repro.engine.autotune`)
ADAPTIVE_ENGINE = "adaptive"

#: every valid sweep-engine selector, in resolution-document order
ENGINES = (FULL_ENGINE, FRONTIER_ENGINE, ADAPTIVE_ENGINE)

#: above this active fraction a frontier phase scans the full visit
#: order with the prebuilt window plans instead of filtering — scanning
#: a superset of the active set is label-identical (the extra nodes are
#: provably stay-put stable) and the filtered re-plans roughly double
#: the per-arc cost, so filtering only pays below ~half activity
FRONTIER_FULL_SWEEP_FRACTION = 0.5

#: minimum bookkeeping refreshes per phase at chunk sizes > 1 — a fully
#: synchronous update (one chunk covering the whole scan) oscillates on
#: symmetric structures (the classic LP two-colouring flip); splitting
#: every phase into at least this many chunks breaks the symmetry while
#: leaving large instances at the requested chunk size
MIN_REFRESHES_PER_PHASE = 32


def resolve_chunk_size(
    explicit: int | None = None, default: int = DEFAULT_CHUNK_SIZE
) -> int:
    """Resolve the LP engine selector to a chunk size.

    ``explicit`` wins when given (``0`` = scan engine, ``>= 1`` = chunked
    kernels; negative values are rejected).  Otherwise ``REPRO_LP_CHUNK``
    is consulted, with empty/invalid/negative values falling back to
    ``default``.  The distributed hot path defaults to
    :data:`DEFAULT_CHUNK_SIZE`; the sequential engine passes
    ``default=SCAN_ENGINE`` so chunking there is opt-in (its node-at-a-
    time results are baked into seeded quality baselines).
    """
    if explicit is not None:
        value = int(explicit)
        if value < 0:
            raise ValueError(
                f"chunk_size must be >= 0 (0 selects the scan engine), got {value}"
            )
        return value
    raw = os.environ.get("REPRO_LP_CHUNK", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


def resolve_engine(
    explicit: str | None = None,
    default: str = ADAPTIVE_ENGINE,
    chunk: int | None = None,
) -> str:
    """Resolve the sweep-engine selector to ``full``/``frontier``/``adaptive``.

    One documented precedence order, highest first:

    1. a *pinned* explicit engine — ``engine='full'`` or
       ``engine='frontier'`` (a function argument or
       ``PartitionConfig.lp_engine``) always wins, over the environment
       too.  An explicit ``'adaptive'`` is **not** pinned: it means "no
       static choice", so it only replaces ``default`` and stays
       re-resolvable by the environment below — which is what lets
       ``lp_engine='adaptive'`` be the config default while the CI
       matrix still forces both static engines through the environment.
    2. the bit-exact guard: at a resolved ``chunk <= 1`` (node-at-a-time
       semantics, RNG tie-break) the environment is *not* consulted and
       the full sweep is returned — neither ``REPRO_LP_ENGINE`` nor
       ``REPRO_LP_FRONTIER`` may silently change bit-exact results.
    3. ``REPRO_LP_ENGINE`` — ``full`` | ``frontier`` | ``adaptive``.
       Unknown non-empty values raise (a typo must not silently select
       a different engine; the :func:`resolve_backend` precedent).
    4. the legacy ``REPRO_LP_FRONTIER`` boolean (truthy selects the
       frontier engine, falsy the full sweep; empty/unknown falls
       through).
    5. ``default`` — :data:`ADAPTIVE_ENGINE` unless the caller says
       otherwise.
    """
    if explicit is not None:
        if explicit not in ENGINES:
            raise ValueError(
                f"lp engine must be one of {ENGINES}, got {explicit!r}"
            )
        if explicit != ADAPTIVE_ENGINE:
            return explicit
        default = ADAPTIVE_ENGINE
    if chunk is not None and chunk <= 1:
        return FULL_ENGINE
    raw = os.environ.get("REPRO_LP_ENGINE", "").strip().lower()
    if raw:
        if raw not in ENGINES:
            raise ValueError(
                f"REPRO_LP_ENGINE must be one of {ENGINES}, got {raw!r}"
            )
        return raw
    raw = os.environ.get("REPRO_LP_FRONTIER", "").strip().lower()
    if raw in {"1", "true", "yes", "on", FRONTIER_ENGINE}:
        return FRONTIER_ENGINE
    if raw in {"0", "false", "no", "off", FULL_ENGINE}:
        return FULL_ENGINE
    return default


def effective_chunk(chunk: int, n_scan: int) -> int:
    """Cap a requested chunk size for a phase scanning ``n_scan`` nodes.

    ``chunk <= 1`` is returned unchanged (the bit-exact mode must stay
    node-at-a-time); larger chunks are capped so every phase performs at
    least :data:`MIN_REFRESHES_PER_PHASE` weight refreshes.
    """
    if chunk <= 1:
        return chunk
    return max(1, min(chunk, -(-n_scan // MIN_REFRESHES_PER_PHASE)))


def make_tie_breaker(seed: int, chunk_size: int):
    """The tie-breaking RNG for a chunked run.

    At ``chunk_size == 1`` the stdlib generator is used so the draw
    stream matches the scalar scan call for call; larger chunks use a
    NumPy generator (vectorised draws, still deterministic per seed).
    """
    if chunk_size == 1:
        return _pyrandom.Random(seed)
    return np.random.default_rng(seed)


_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)
_MIX_D = np.uint64(0xFF51AFD7ED558CCD)
_SHIFT = np.uint64(33)


def candidate_tie_hash(
    seed: int, nodes: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Stateless per-``(seed, node, label)`` tie-break priorities.

    A splitmix64-style avalanche over the candidate's node id and label.
    Unlike a shared RNG stream, the value a candidate receives does not
    depend on which other nodes are visited or in which phase — the
    property that makes frontier scans decision-identical to full
    sweeps.  Ties on the hash itself (vanishingly rare) fall back to the
    candidates' deterministic order in :func:`pick_targets_hashed`.
    """
    x = nodes.astype(np.uint64) * _MIX_A
    x ^= labels.astype(np.uint64) + _MIX_B + (np.uint64(seed) << np.uint64(1))
    x ^= x >> _SHIFT
    x *= _MIX_D
    x ^= x >> _SHIFT
    x *= _MIX_C
    x ^= x >> _SHIFT
    return x


def chunk_ranges(n: int, chunk_size: int):
    """Yield ``(start, stop)`` pairs covering ``range(n)`` in chunks."""
    for start in range(0, n, chunk_size):
        yield start, min(start + chunk_size, n)


class IterationWorkspace:
    """Reusable scratch buffers for the chunked LP kernels.

    One workspace per SCLP call (one level of the hierarchy): every
    named buffer is allocated once at the first chunk that needs it,
    grown to the next power of two when a later chunk is larger, and
    *reused* across chunks and iterations — the per-iteration
    allocation churn of the aggregation/argmax kernels collapses to the
    handful of NumPy calls with no ``out=`` form (``argsort``,
    ``flatnonzero``).  Buffers are handed out as prefix *views*; a
    caller must consume a view before requesting the same key again
    (the kernels here do: every candidate array dies with its chunk).

    Not thread-safe and not shared between backends: each rank of an
    SPMD run drives its own SCLP call, hence its own workspace.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def buf(self, key: str, size: int, dtype) -> np.ndarray:
        """A length-``size`` view of the (grow-only) buffer ``key``."""
        arr = self._bufs.get(key)
        if arr is None or arr.size < size or arr.dtype != np.dtype(dtype):
            capacity = max(16, 1 << max(0, int(size - 1).bit_length()))
            arr = np.empty(capacity, dtype=dtype)
            self._bufs[key] = arr
        return arr[:size]

    def arange(self, size: int) -> np.ndarray:
        """A read-only ``arange(size)`` prefix view (cached, grow-only)."""
        arr = self._bufs.get("arange")
        if arr is None or arr.size < size:
            capacity = max(16, 1 << max(0, int(size - 1).bit_length()))
            arr = np.arange(capacity, dtype=np.int64)
            self._bufs["arange"] = arr
        return arr[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes held across all buffers (for ``mem`` telemetry)."""
        return sum(arr.nbytes for arr in self._bufs.values())


@dataclass
class ChunkCandidates:
    """Per-(node, label) move candidates for one chunk of nodes.

    Candidates are grouped by chunk node and, within a node, ordered by
    first occurrence in the adjacency scan (own-label fallback rows
    last) — the insertion order of the scalar scan's ``conn`` dict.
    """

    node_pos: np.ndarray  # chunk position of each candidate (ascending)
    labels: np.ndarray  # candidate label
    strength: np.ndarray  # summed weight of arcs into the label
    is_own: np.ndarray  # candidate label == the node's current label
    seg_start: np.ndarray  # per chunk node: offset of its candidate run
    seg_count: np.ndarray  # per chunk node: number of candidates (>= 1)
    arcs_scanned: int  # degrees summed over the chunk (work accounting)


def _segment_local_arange(counts: np.ndarray, total: int) -> np.ndarray:
    """``[0..counts[0]-1, 0..counts[1]-1, ...]`` without a Python loop."""
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)


@dataclass
class ChunkPlan:
    """Label-independent arc structure of one chunk of nodes.

    Everything here depends only on the visit order, the CSR arrays and
    the (phase-invariant) constraint — not on the evolving labels — so a
    plan built once can be re-aggregated every phase.  The cluster
    engines exploit this: their degree-ascending order is fixed, so the
    per-chunk gather/repeat/cumsum work happens once per run instead of
    once per phase.
    """

    nodes: np.ndarray  # the chunk's nodes, in visit order
    own_pos: np.ndarray  # chunk position of each surviving arc's source
    nbr: np.ndarray  # arc targets (constraint-filtered)
    wgt: np.ndarray  # arc weights (constraint-filtered)
    arcs_scanned: int  # degrees summed pre-filter (work accounting)


def plan_chunk(
    nodes: np.ndarray,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    adjwgt: np.ndarray,
    constraint: np.ndarray | None = None,
) -> ChunkPlan:
    """Build the label-independent arc structure for a chunk of nodes.

    A zero-weight *self-arc* is appended per chunk node (after the real
    arcs, so it sorts behind every real occurrence): its neighbour label
    is the node's own label by construction, which realises the scan's
    ``conn.setdefault(own, 0)`` with no membership test at aggregation
    time.  Self-arcs contribute no strength and are excluded from the
    work accounting.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    n_chunk = nodes.size
    begins = xadj[nodes]
    counts = (xadj[nodes + 1] - begins).astype(np.int64)
    total = int(counts.sum())
    arc_idx = np.repeat(begins, counts) + _segment_local_arange(counts, total)
    node_pos = np.repeat(np.arange(n_chunk, dtype=np.int64), counts)
    nbr = adjncy[arc_idx]
    wgt = adjwgt[arc_idx]
    if constraint is not None:
        keep = constraint[nbr] == constraint[nodes][node_pos]
        node_pos, nbr, wgt = node_pos[keep], nbr[keep], wgt[keep]
    node_pos = np.concatenate([node_pos, np.arange(n_chunk, dtype=np.int64)])
    nbr = np.concatenate([nbr, nodes])
    wgt = np.concatenate([wgt, np.zeros(n_chunk, dtype=wgt.dtype)])
    return ChunkPlan(
        nodes=nodes, own_pos=node_pos, nbr=nbr, wgt=wgt, arcs_scanned=total
    )


def gather_neighbors(
    nodes: np.ndarray, xadj: np.ndarray, adjncy: np.ndarray
) -> np.ndarray:
    """Concatenated CSR adjacency of ``nodes`` (one vectorised gather).

    The frontier engines use this to turn a set of movers into the set
    of nodes whose decision inputs changed.  Duplicates are returned as
    stored; callers scatter into boolean masks, so dedup is implicit.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    begins = xadj[nodes]
    counts = (xadj[nodes + 1] - begins).astype(np.int64)
    total = int(counts.sum())
    arc_idx = np.repeat(begins, counts) + _segment_local_arange(counts, total)
    return adjncy[arc_idx]


def aggregate_candidates(
    plan: ChunkPlan,
    labels: np.ndarray,
    label_span: int,
    exact_order: bool = False,
    workspace: IterationWorkspace | None = None,
) -> ChunkCandidates:
    """Aggregate a chunk's neighbour-label connection strengths.

    Every chunk node receives at least one candidate: its own label is
    appended with strength 0 when no (constraint-eligible) neighbour
    carries it, mirroring ``conn.setdefault(own, 0)`` in the scan.

    ``exact_order`` makes the candidates of each node appear in the
    scalar scan's dict insertion order — first occurrence in the
    adjacency scan, own-label fallback last — which the ``chunk_size=1``
    bit-exactness contract requires (the tie-break rank depends on it).
    The default orders a node's candidates by label value instead, which
    halves the sort passes and is still deterministic.  ``label_span``
    must exceed every value in ``labels``.

    ``workspace`` (fast path only) routes every sized temporary through
    reusable buffers; results are views into the workspace, valid until
    the next chunk requests it.  Output values are identical with and
    without it (test-enforced).
    """
    n_chunk = plan.nodes.size
    node_pos = plan.own_pos
    wgt = plan.wgt
    total = plan.arcs_scanned

    if workspace is not None and not exact_order and n_chunk * label_span <= 2**62:
        return _aggregate_fast_ws(plan, labels, label_span, workspace)
    own = labels[plan.nodes]
    lab = labels[plan.nbr]

    if not exact_order and n_chunk * label_span <= 2**62:
        # Fast path: a combined single sort key halves the sort passes
        # (within-node candidate order becomes label value — irrelevant
        # beyond ``chunk_size=1``).
        key = node_pos * label_span + lab
        order = np.argsort(key, kind="stable")
        g_key = key[order]
        head = np.empty(g_key.size, dtype=bool)
        head[0] = True
        head[1:] = g_key[1:] != g_key[:-1]
        starts = np.flatnonzero(head)
        c_str = np.add.reduceat(wgt[order], starts).astype(np.int64)
        c_node, c_lab = np.divmod(g_key[starts], label_span)
    else:
        # Exact path: group by (node, label) with a stable lexsort; the
        # first element of each group is the label's first occurrence in
        # the adjacency scan (the plan's trailing self-arc realises the
        # appended-last own label), then order each node's candidates by
        # that first occurrence — the scan dict's insertion order.
        arc_pos = np.arange(lab.size, dtype=np.int64)
        order = np.lexsort((lab, node_pos))
        g_node, g_lab = node_pos[order], lab[order]
        g_wgt, g_pos = wgt[order], arc_pos[order]
        head = np.empty(g_node.size, dtype=bool)
        head[0] = True
        head[1:] = (g_node[1:] != g_node[:-1]) | (g_lab[1:] != g_lab[:-1])
        starts = np.flatnonzero(head)
        c_first = g_pos[starts]
        c_str = np.add.reduceat(g_wgt, starts).astype(np.int64)
        order = np.lexsort((c_first, g_node[starts]))
        c_node = g_node[starts][order]
        c_lab = g_lab[starts][order]
        c_str = c_str[order]

    seg_count = np.bincount(c_node, minlength=n_chunk).astype(np.int64)
    seg_start = np.zeros(n_chunk, dtype=np.int64)
    np.cumsum(seg_count[:-1], out=seg_start[1:])
    return ChunkCandidates(
        node_pos=c_node,
        labels=c_lab,
        strength=c_str,
        is_own=c_lab == own[c_node],
        seg_start=seg_start,
        seg_count=seg_count,
        arcs_scanned=total,
    )


def _aggregate_fast_ws(
    plan: ChunkPlan,
    labels: np.ndarray,
    label_span: int,
    ws: IterationWorkspace,
) -> ChunkCandidates:
    """The combined-key fast path of :func:`aggregate_candidates`, with
    every sized temporary routed through the workspace.  Same values as
    the allocating path; only ``argsort``/``flatnonzero`` still allocate
    (NumPy offers no ``out=`` form for either)."""
    n_chunk = plan.nodes.size
    node_pos = plan.own_pos
    m = node_pos.size
    own = np.take(labels, plan.nodes, out=ws.buf("agg.own", n_chunk, np.int64))
    lab = np.take(labels, plan.nbr, out=ws.buf("agg.lab", m, np.int64))

    key = ws.buf("agg.key", m, np.int64)
    np.multiply(node_pos, label_span, out=key)
    key += lab
    order = np.argsort(key, kind="stable")
    g_key = np.take(key, order, out=ws.buf("agg.gkey", m, np.int64))
    head = ws.buf("agg.head", m, bool)
    head[0] = True
    np.not_equal(g_key[1:], g_key[:-1], out=head[1:])
    starts = np.flatnonzero(head)
    n_cand = starts.size
    wgt = plan.wgt if plan.wgt.dtype == np.int64 else plan.wgt.astype(np.int64)
    g_wgt = np.take(wgt, order, out=ws.buf("agg.gwgt", m, np.int64))
    c_str = ws.buf("agg.cstr", n_cand, np.int64)
    np.add.reduceat(g_wgt, starts, out=c_str)
    s_key = np.take(g_key, starts, out=ws.buf("agg.skey", n_cand, np.int64))
    c_node = ws.buf("agg.cnode", n_cand, np.int64)
    np.floor_divide(s_key, label_span, out=c_node)
    c_lab = ws.buf("agg.clab", n_cand, np.int64)
    np.remainder(s_key, label_span, out=c_lab)

    # Every chunk node owns at least one candidate (the trailing
    # self-arc), so the run boundaries of the sorted ``c_node`` cover
    # exactly the ``n_chunk`` nodes — ``diff`` of boundaries replaces
    # the allocating ``bincount``.
    nhead = ws.buf("agg.nhead", n_cand, bool)
    nhead[0] = True
    np.not_equal(c_node[1:], c_node[:-1], out=nhead[1:])
    seg_start = np.flatnonzero(nhead)
    seg_count = ws.buf("agg.segcnt", n_chunk, np.int64)
    np.subtract(seg_start[1:], seg_start[:-1], out=seg_count[: n_chunk - 1])
    seg_count[n_chunk - 1] = n_cand - seg_start[n_chunk - 1]

    own_at = np.take(own, c_node, out=ws.buf("agg.ownat", n_cand, np.int64))
    is_own = ws.buf("agg.isown", n_cand, bool)
    np.equal(c_lab, own_at, out=is_own)
    return ChunkCandidates(
        node_pos=c_node,
        labels=c_lab,
        strength=c_str,
        is_own=is_own,
        seg_start=seg_start,
        seg_count=seg_count,
        arcs_scanned=plan.arcs_scanned,
    )


def gather_candidates(
    nodes: np.ndarray,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    adjwgt: np.ndarray,
    labels: np.ndarray,
    constraint: np.ndarray | None = None,
    exact_order: bool = False,
) -> ChunkCandidates:
    """One-shot convenience wrapper: :func:`plan_chunk` + aggregation."""
    plan = plan_chunk(nodes, xadj, adjncy, adjwgt, constraint)
    label_span = int(labels.max(initial=0)) + 1
    return aggregate_candidates(plan, labels, label_span, exact_order)


def pick_targets(cands: ChunkCandidates, eligible: np.ndarray, tie_rng) -> np.ndarray:
    """Masked argmax with ordered tie-breaking, per chunk node.

    ``eligible`` masks candidates per the mode's rules (own label already
    masked for evicting nodes).  Returns, per chunk node, the index of
    the chosen candidate into the candidate arrays, or ``-1`` when no
    candidate is eligible.  The tie-break draws exactly one
    ``randrange(t)`` per node with ``t > 1`` tied strongest labels, in
    visit order, over the labels in first-occurrence order — the scalar
    scan's behaviour.
    """
    n_chunk = cands.seg_start.size
    choice = np.full(n_chunk, -1, dtype=np.int64)
    if cands.node_pos.size == 0:
        return choice
    eff = np.where(eligible, cands.strength, np.int64(-1))
    seg_max = np.maximum.reduceat(eff, cands.seg_start)
    best = eligible & (cands.strength == seg_max[cands.node_pos])

    best_int = best.astype(np.int64)
    tie_count = np.add.reduceat(best_int, cands.seg_start)
    cum = np.cumsum(best_int)
    seg_before = cum[cands.seg_start] - best_int[cands.seg_start]
    rank = cum - 1 - seg_before[cands.node_pos]

    draws = np.zeros(n_chunk, dtype=np.int64)
    multi = np.flatnonzero(tie_count > 1)
    if multi.size:
        if isinstance(tie_rng, np.random.Generator):
            draws[multi] = tie_rng.integers(0, tie_count[multi])
        else:
            for i in multi.tolist():
                draws[i] = tie_rng.randrange(int(tie_count[i]))
    chosen = best & (rank == draws[cands.node_pos])
    sel = np.flatnonzero(chosen)
    choice[cands.node_pos[sel]] = sel
    return choice


def pick_targets_hashed(
    cands: ChunkCandidates,
    eligible: np.ndarray,
    tie_hash: np.ndarray,
    workspace: IterationWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Masked argmax with hash tie-breaking, plus a *risky* flag per node.

    The counterpart of :func:`pick_targets` for the frontier-capable
    engines: ties among the strongest eligible labels go to the largest
    :func:`candidate_tie_hash` value (hash collisions fall back to the
    first candidate in aggregation order), so the decision is a pure
    function of the node's ``(label, strength, eligibility)`` snapshot —
    no RNG stream is consumed and visiting fewer nodes cannot shift
    other nodes' draws.

    Returns ``(choice, risky)``.  ``choice`` is as in
    :func:`pick_targets`.  ``risky[i]`` is set when some *ineligible*
    candidate of node ``i`` would *win* were it eligible: its strength
    strictly beats the eligible optimum, or matches it and beats the
    winner's tie hash (the hash order is phase-invariant, so an
    equality-tie that loses it today loses it in every rescan).  Only
    for risky nodes can an eligibility flip (a label regaining
    capacity) alter the decision while the neighbourhood's labels stay
    put, so un-risky stay-put nodes may safely leave the frontier.
    """
    n_chunk = cands.seg_start.size
    choice = np.full(n_chunk, -1, dtype=np.int64)
    risky = np.zeros(n_chunk, dtype=bool)
    if cands.node_pos.size == 0:
        return choice, risky
    if workspace is not None:
        return _pick_hashed_ws(cands, eligible, tie_hash, workspace,
                               choice, risky)
    eff = np.where(eligible, cands.strength, np.int64(-1))
    seg_max = np.maximum.reduceat(eff, cands.seg_start)
    node_max = seg_max[cands.node_pos]

    best = eligible & (cands.strength == node_max)
    h_eff = np.where(best, tie_hash, np.uint64(0))
    seg_hmax = np.maximum.reduceat(h_eff, cands.seg_start)
    winner = best & (h_eff == seg_hmax[cands.node_pos])
    idx = np.arange(cands.node_pos.size, dtype=np.int64)
    idx_eff = np.where(winner, idx, np.int64(np.iinfo(np.int64).max))
    seg_first = np.minimum.reduceat(idx_eff, cands.seg_start)
    has = seg_max >= 0
    choice[has] = seg_first[has]

    # A node with no eligible candidate at all stays risky for every
    # ineligible one (any flip hands that label the win outright).
    danger = (~eligible) & (
        (cands.strength > node_max)
        | (
            # >= : an exact hash collision falls back to aggregation
            # order, which an eligibility flip could tip — keep it risky
            (cands.strength == node_max)
            & (tie_hash >= seg_hmax[cands.node_pos])
        )
        | ~has[cands.node_pos]
    )
    risky = np.add.reduceat(danger.astype(np.int64), cands.seg_start) > 0
    return choice, risky


def _pick_hashed_ws(
    cands: ChunkCandidates,
    eligible: np.ndarray,
    tie_hash: np.ndarray,
    ws: IterationWorkspace,
    choice: np.ndarray,
    risky: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Workspace-buffered body of :func:`pick_targets_hashed` (same
    values as the allocating path, test-enforced).  ``choice``/``risky``
    are the caller's freshly-allocated result arrays — per-node sized,
    cheap, and safe to outlive the next chunk's workspace reuse."""
    m = cands.node_pos.size
    seg_start = cands.seg_start
    n_seg = seg_start.size
    eff = ws.buf("pick.eff", m, np.int64)
    eff.fill(-1)
    np.copyto(eff, cands.strength, where=eligible)
    seg_max = ws.buf("pick.segmax", n_seg, np.int64)
    np.maximum.reduceat(eff, seg_start, out=seg_max)
    node_max = np.take(seg_max, cands.node_pos,
                       out=ws.buf("pick.nodemax", m, np.int64))

    best = ws.buf("pick.best", m, bool)
    np.equal(cands.strength, node_max, out=best)
    best &= eligible
    h_eff = ws.buf("pick.heff", m, np.uint64)
    h_eff.fill(0)
    np.copyto(h_eff, tie_hash, where=best)
    seg_hmax = ws.buf("pick.seghmax", n_seg, np.uint64)
    np.maximum.reduceat(h_eff, seg_start, out=seg_hmax)
    node_hmax = np.take(seg_hmax, cands.node_pos,
                        out=ws.buf("pick.nodehmax", m, np.uint64))
    winner = ws.buf("pick.winner", m, bool)
    np.equal(h_eff, node_hmax, out=winner)
    winner &= best
    idx_eff = ws.buf("pick.idxeff", m, np.int64)
    idx_eff.fill(np.iinfo(np.int64).max)
    np.copyto(idx_eff, ws.arange(m), where=winner)
    seg_first = ws.buf("pick.segfirst", n_seg, np.int64)
    np.minimum.reduceat(idx_eff, seg_start, out=seg_first)
    has = ws.buf("pick.has", n_seg, bool)
    np.greater_equal(seg_max, 0, out=has)
    np.copyto(choice, seg_first, where=has)

    danger = ws.buf("pick.danger", m, bool)
    np.greater(cands.strength, node_max, out=danger)
    t_eq = ws.buf("pick.teq", m, bool)
    np.equal(cands.strength, node_max, out=t_eq)
    t_hash = ws.buf("pick.thash", m, bool)
    np.greater_equal(tie_hash, node_hmax, out=t_hash)
    t_eq &= t_hash
    danger |= t_eq
    no_elig = np.take(has, cands.node_pos, out=t_hash)  # reuse: done with it
    np.logical_not(no_elig, out=no_elig)
    danger |= no_elig
    np.logical_not(eligible, out=t_eq)  # reuse: done with it
    danger &= t_eq
    np.logical_or.reduceat(danger, seg_start, out=risky)
    return choice, risky


def capped_inflow_mask(
    targets: np.ndarray,
    weights: np.ndarray,
    used: np.ndarray,
    budget: np.ndarray,
) -> np.ndarray:
    """Cancel chunk moves that would overrun a label's remaining capacity.

    ``targets``/``weights`` are the chunk's intended moves in visit
    order; ``used[i]`` is the weight already booked against
    ``targets[i]`` as of the chunk start and ``budget[i]`` its capacity
    (both identical for equal targets).  Per target label, the
    cumulative moved weight in visit order is cut at the first overrun
    of ``used + cumulative <= budget``, so committed weights never
    exceed the chunk-start capacity even though every node evaluated
    eligibility against the same stale snapshot.  The test is written as
    an addition (not ``cumulative <= budget - used``) so that a chunk of
    one move reproduces the scan's eligibility comparison bit for bit,
    floats included.
    """
    if targets.size == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(targets, kind="stable")
    t_s, w_s = targets[order], weights[order]
    cum = np.cumsum(w_s)
    head = np.empty(t_s.size, dtype=bool)
    head[0] = True
    head[1:] = t_s[1:] != t_s[:-1]
    starts = np.flatnonzero(head)
    seg_base = cum[starts] - w_s[starts]
    seg_id = np.cumsum(head) - 1
    within = cum - seg_base[seg_id]
    ok = (used[order] + within) <= budget[order]
    keep = np.empty(targets.size, dtype=bool)
    keep[order] = ok
    return keep
