"""R-MAT / Kronecker graphs — scale-free stand-ins for web crawls.

The recursive-matrix generator of Chakrabarti et al. drops each edge into
an adjacency-matrix quadrant with probabilities ``(a, b, c, d)``
recursively, yielding heavy-tailed degree distributions and the
self-similar community structure typical of web graphs.  The Graph500
parameters ``(0.57, 0.19, 0.19, 0.05)`` are the default.

Bit-level vectorisation: all ``scale`` levels of the recursion are drawn
at once as Bernoulli matrices of shape ``(num_edges, scale)``, so edge
generation is a handful of NumPy ops regardless of size.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_coo
from ..graph.csr import Graph

__all__ = ["rmat"]


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str | None = None,
) -> Graph:
    """R-MAT graph with ``2^scale`` nodes and ``edge_factor * 2^scale`` edge draws.

    Duplicate edges and self-loops are merged/dropped, so the realised
    edge count is somewhat below the draw count (as in the reference
    generator).  ``d = 1 - a - b - c``.
    """
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum to <= 1")
    n = 2**scale
    num_draws = edge_factor * n
    rng = np.random.default_rng(seed)

    # For each edge and each recursion level, decide (row-bit, col-bit).
    # P(row-bit = 1) = c + d; P(col-bit = 1 | row-bit) differs per half.
    u = rng.random((num_draws, scale))
    v = rng.random((num_draws, scale))
    row_bits = u >= (a + b)
    p_col_given_row0 = b / (a + b) if (a + b) > 0 else 0.0
    p_col_given_row1 = d / (c + d) if (c + d) > 0 else 0.0
    col_threshold = np.where(row_bits, p_col_given_row1, p_col_given_row0)
    col_bits = v < col_threshold

    powers = 2 ** np.arange(scale - 1, -1, -1, dtype=np.int64)
    rows = (row_bits * powers).sum(axis=1)
    cols = (col_bits * powers).sum(axis=1)

    # Random node-id permutation removes the artificial locality of the
    # quadrant encoding (standard Graph500 post-processing step).
    perm = rng.permutation(n)
    rows = perm[rows]
    cols = perm[cols]

    # Deduplicate to unit edge weights (the paper's inputs are unweighted).
    keep = rows != cols
    lo = np.minimum(rows[keep], cols[keep])
    hi = np.maximum(rows[keep], cols[keep])
    keys = np.unique(lo * n + hi)
    return from_coo(n, keys // n, keys % n, name=name or f"rmat{scale}")
