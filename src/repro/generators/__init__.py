"""Benchmark graph generators (scaled Table I stand-ins and families)."""

from .ba import barabasi_albert, powerlaw_cluster
from .delaunay import delaunay, delaunay_graph
from .mesh import grid_2d, grid_3d, torus_2d
from .planted import planted_partition
from .rgg import random_geometric_graph, rgg, rgg_radius
from .rmat import rmat
from .stream import EdgeSpill, ba_shards, rmat_shards, web_shards
from .suite import INSTANCES, Instance, family_instance, instance_names, load_instance
from .webgraph import web_copy_graph

__all__ = [
    "EdgeSpill",
    "INSTANCES",
    "Instance",
    "ba_shards",
    "barabasi_albert",
    "delaunay",
    "delaunay_graph",
    "family_instance",
    "grid_2d",
    "grid_3d",
    "instance_names",
    "load_instance",
    "planted_partition",
    "powerlaw_cluster",
    "random_geometric_graph",
    "rgg",
    "rgg_radius",
    "rmat",
    "rmat_shards",
    "torus_2d",
    "web_copy_graph",
    "web_shards",
]
