"""Planted-partition (stochastic block model) graphs.

A controlled community-structure generator used by the tests and
ablations: ``blocks`` groups of equal size with intra-group edge
probability ``p_in`` and inter-group probability ``p_out``.  With
``p_in >> p_out`` the ground-truth communities are exactly the blocks, so
tests can assert that size-constrained label propagation recovers them
and that cluster contraction shrinks the graph to ~``blocks`` nodes.

Sampling is vectorised per block pair: the number of edges between two
groups is drawn from the binomial, then that many distinct pairs are
sampled — O(edges), never O(n^2).
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_coo
from ..graph.csr import Graph

__all__ = ["planted_partition"]


def _sample_pairs(rng, count: int, size_a: int, size_b: int, same: bool) -> np.ndarray:
    """Sample ``count`` distinct (i, j) index pairs between two groups."""
    total = size_a * (size_a - 1) // 2 if same else size_a * size_b
    count = min(count, total)
    if count <= 0:
        return np.empty((0, 2), dtype=np.int64)
    chosen = rng.choice(total, size=count, replace=False)
    if same:
        # Unrank upper-triangle index k -> (i, j), i < j.
        i = (size_a - 2 - np.floor(
            np.sqrt(-8.0 * chosen + 4.0 * size_a * (size_a - 1) - 7) / 2.0 - 0.5
        )).astype(np.int64)
        j = (chosen + i + 1 - size_a * (size_a - 1) // 2
             + (size_a - i) * (size_a - i - 1) // 2).astype(np.int64)
        return np.stack([i, j], axis=1)
    return np.stack([chosen // size_b, chosen % size_b], axis=1)


def planted_partition(
    blocks: int,
    block_size: int,
    p_in: float = 0.3,
    p_out: float = 0.01,
    seed: int = 0,
    name: str | None = None,
) -> tuple[Graph, np.ndarray]:
    """Generate a planted-partition graph.

    Returns the graph and the ground-truth block assignment.
    """
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    rng = np.random.default_rng(seed)
    n = blocks * block_size
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for a in range(blocks):
        base_a = a * block_size
        intra = rng.binomial(block_size * (block_size - 1) // 2, p_in)
        pairs = _sample_pairs(rng, intra, block_size, block_size, same=True)
        if pairs.size:
            rows.append(base_a + pairs[:, 0])
            cols.append(base_a + pairs[:, 1])
        for b in range(a + 1, blocks):
            base_b = b * block_size
            inter = rng.binomial(block_size * block_size, p_out)
            pairs = _sample_pairs(rng, inter, block_size, block_size, same=False)
            if pairs.size:
                rows.append(base_a + pairs[:, 0])
                cols.append(base_b + pairs[:, 1])
    if rows:
        row_arr = np.concatenate(rows)
        col_arr = np.concatenate(cols)
    else:
        row_arr = np.empty(0, dtype=np.int64)
        col_arr = np.empty(0, dtype=np.int64)
    truth = np.repeat(np.arange(blocks, dtype=np.int64), block_size)
    graph = from_coo(n, row_arr, col_arr, name=name or f"ppm-{blocks}x{block_size}")
    return graph, truth
