"""Copying-model web graphs — stand-ins for the WebGraph crawls.

The paper's hardest instances (uk-2007, sk-2005, arabic-2005, eu-2005,
in-2004) are web crawls with three structural properties that drive every
experiment:

* **power-law degrees with extreme hubs** — produced by the Kumar et al.
  *copying model*: each new page picks a prototype and copies its links
  with probability ``copy_probability`` (copying is implicit preferential
  attachment);
* **strong host-level community structure** — we plant hosts: pages pick
  prototypes within their host and only ``inter_host_probability`` of
  non-copied links leave it.  Cluster contraction collapses these
  communities by orders of magnitude per level;
* **a large leaf fringe attached to hubs** — a ``leaf_fraction`` of pages
  carry only 1–2 links, chosen *preferentially* (urn of edge endpoints),
  so thousands of leaves share a handful of hubs.  This is exactly what
  stalls matching-based coarsening: a hub star contributes one matched
  edge per level and every other leaf stays a singleton — the mechanism
  behind ParMetis's "less than a factor of two reduction" on uk-2007 and
  the resulting out-of-memory failures (Section V-B).

Linking each page to its prototype turns copied links into triangles,
giving the high local clustering measured on real crawls.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_edges
from ..graph.csr import Graph

__all__ = ["web_copy_graph"]


def web_copy_graph(
    num_nodes: int,
    out_degree: int = 7,
    copy_probability: float = 0.7,
    hosts: int | None = None,
    inter_host_probability: float = 0.05,
    leaf_fraction: float = 0.45,
    seed: int = 0,
    name: str | None = None,
) -> Graph:
    """Generate a web-crawl-like graph with planted host communities.

    Parameters
    ----------
    num_nodes:
        Total number of pages.
    out_degree:
        Links added per new *core* page.
    copy_probability:
        Probability of copying a prototype link instead of a random one.
    hosts:
        Number of host communities (default ``max(4, num_nodes // 256)``).
    inter_host_probability:
        Probability that a non-copied link leaves the page's host.
    leaf_fraction:
        Fraction of pages that are leaves: 1–2 links, chosen
        preferentially (they pile onto hubs).
    """
    if hosts is None:
        hosts = max(4, num_nodes // 256)
    hosts = min(hosts, max(1, num_nodes // 8))
    if not (0.0 <= leaf_fraction < 1.0):
        raise ValueError("leaf_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)

    host_of = rng.integers(0, hosts, size=num_nodes)
    members: list[list[int]] = [[] for _ in range(hosts)]  # core pages per host
    urns: list[list[int]] = [[] for _ in range(hosts)]  # edge endpoints per host
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    edges: list[tuple[int, int]] = []

    def add_edge(u: int, v: int) -> None:
        edges.append((u, v))
        adjacency[u].append(v)
        adjacency[v].append(u)
        urn = urns[host_of[u]]
        urn.append(u)
        urn.append(v)

    seed_count = min(num_nodes, max(out_degree + 1, 8))
    for v in range(seed_count):
        members[host_of[v]].append(v)
        for u in range(max(0, v - out_degree), v):
            add_edge(u, v)

    for v in range(seed_count, num_nodes):
        my_host = int(host_of[v])
        local = members[my_host]
        urn = urns[my_host]
        is_leaf = rng.random() < leaf_fraction

        if is_leaf and urn:
            # Leaf page: 1-2 preferential links within the host (leaves
            # pile onto the host's hubs; they never become prototypes).
            count = 1 if rng.random() < 0.75 else 2
            targets: set[int] = set()
            for _ in range(4 * count):
                t = int(urn[rng.integers(0, len(urn))])
                if t != v:
                    targets.add(t)
                if len(targets) >= count:
                    break
            if not targets:
                targets.add(v - 1)
            for t in targets:
                add_edge(v, t)
            continue

        prototype = int(local[rng.integers(0, len(local))]) if local else int(rng.integers(0, v))
        proto_links = adjacency[prototype]
        targets = set()
        # Linking to the prototype itself turns every copied link into a
        # triangle (page + prototype + shared target).
        if prototype != v:
            targets.add(prototype)
        attempts = 0
        while len(targets) < out_degree and attempts < 8 * out_degree:
            attempts += 1
            if proto_links and rng.random() < copy_probability:
                t = int(proto_links[rng.integers(0, len(proto_links))])
            elif local and rng.random() >= inter_host_probability:
                t = int(local[rng.integers(0, len(local))])
            else:
                t = int(rng.integers(0, v))
            if t != v:
                targets.add(t)
        if not targets:
            targets.add(v - 1)
        for t in targets:
            add_edge(v, t)
        members[my_host].append(v)

    return from_edges(num_nodes, edges, name=name or f"web-n{num_nodes}")
