"""Benchmark-instance registry mirroring the paper's Table I.

Every row of Table I gets a *scaled stand-in*: a synthetic graph of the
same structural class (S = social/web, M = mesh) generated at
10^3–10^4 nodes so the pure-Python reproduction runs in seconds.  The
``paper_nodes``/``paper_edges`` fields record the original sizes so the
Table I bench can print the correspondence, and the scaling studies use
the parametric ``delX``/``rggX`` families exactly as the paper does.

The mapping (documented per instance below and in DESIGN.md):

* social networks (amazon, youtube) → preferential attachment with triad
  closure (power law + high clustering);
* web crawls (eu-2005, in-2004, uk-2002, arabic-2005, sk-2005, uk-2007) →
  the copying model with planted host communities (power law + strong
  community structure + extreme hubs);
* enwiki → R-MAT (heavy-tailed, weak locality — hardest S instance);
* meshes (packing, channel, nlpkkt240) → 3D grids; hugebubble → 2D grid
  (degree ≈ 3, like the original); del/rgg → the paper's own generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from ..graph.csr import Graph
from .ba import barabasi_albert, powerlaw_cluster
from .delaunay import delaunay
from .mesh import grid_2d, grid_3d
from .rgg import rgg
from .webgraph import web_copy_graph

__all__ = ["Instance", "INSTANCES", "instance_names", "load_instance", "family_instance"]


@dataclass(frozen=True)
class Instance:
    """One row of Table I with its scaled stand-in generator."""

    name: str
    kind: str  # 'S' (social/web) or 'M' (mesh)
    paper_nodes: float
    paper_edges: float
    group: str  # 'large' | 'web' — Table I section
    builder: Callable[[int], Graph]

    def build(self, seed: int = 0) -> Graph:
        """Generate the stand-in graph (deterministic per seed)."""
        graph = self.builder(seed)
        object.__setattr__(graph, "name", self.name)
        return graph


def _mk(name, kind, n, m, group, builder) -> Instance:
    return Instance(name, kind, n, m, group, builder)


INSTANCES: dict[str, Instance] = {
    inst.name: inst
    for inst in [
        # --- Large Graphs (Table I, top section) -----------------------
        _mk("amazon", "S", 407e3, 2.3e6, "large",
            lambda s: powerlaw_cluster(4096, attach=5, triad_probability=0.6, seed=s)),
        _mk("eu-2005", "S", 862e3, 16.1e6, "large",
            lambda s: web_copy_graph(4096, out_degree=16, copy_probability=0.75, seed=s)),
        _mk("youtube", "S", 1.1e6, 2.9e6, "large",
            lambda s: barabasi_albert(6144, attach=3, seed=s)),
        _mk("in-2004", "S", 1.3e6, 13.6e6, "large",
            lambda s: web_copy_graph(5120, out_degree=10, copy_probability=0.8, seed=s)),
        _mk("packing", "M", 2.1e6, 17.4e6, "large",
            lambda s: grid_3d(13, 13, 13)),
        # dense hyperlink graph: heavy tail plus the moderate community
        # structure real Wikipedia has (an R-MAT stand-in would have none
        # and make cluster coarsening look artificially bad — see DESIGN)
        _mk("enwiki", "S", 4.2e6, 91.9e6, "large",
            lambda s: powerlaw_cluster(4096, attach=22, triad_probability=0.35, seed=s)),
        _mk("channel", "M", 4.8e6, 42.6e6, "large",
            lambda s: grid_3d(17, 17, 17)),
        _mk("hugebubbles", "M", 18.3e6, 27.5e6, "large",
            lambda s: grid_2d(110, 110)),
        _mk("nlpkkt240", "M", 27.9e6, 373e6, "large",
            lambda s: grid_3d(24, 24, 24)),
        _mk("uk-2002", "S", 18.5e6, 262e6, "large",
            lambda s: web_copy_graph(8192, out_degree=14, copy_probability=0.8, seed=s)),
        _mk("del26", "M", 67.1e6, 201e6, "large",
            lambda s: delaunay(13, seed=s)),
        _mk("rgg26", "M", 67.1e6, 575e6, "large",
            lambda s: rgg(13, seed=s)),
        # --- Larger Web Graphs (Table I, middle section) ----------------
        # leaf_fraction 0.65: arabic is the instance ParMetis can only fit
        # with <= 15 PEs on machine A (Table II footnote) — its stalled
        # coarsest replica must land between 512/32 and 512/15 GB.
        _mk("arabic-2005", "S", 22.7e6, 553e6, "web",
            lambda s: web_copy_graph(12288, out_degree=24, copy_probability=0.8,
                                     leaf_fraction=0.65, seed=s)),
        _mk("sk-2005", "S", 50.6e6, 1.8e9, "web",
            lambda s: web_copy_graph(16384, out_degree=36, copy_probability=0.85, seed=s)),
        _mk("uk-2007", "S", 105.8e6, 3.3e9, "web",
            lambda s: web_copy_graph(24576, out_degree=31, copy_probability=0.85, seed=s)),
    ]
}


def instance_names(kind: str | None = None, group: str | None = None) -> list[str]:
    """Registry names, optionally filtered by class ('S'/'M') or group."""
    return [
        name
        for name, inst in INSTANCES.items()
        if (kind is None or inst.kind == kind) and (group is None or inst.group == group)
    ]


@lru_cache(maxsize=64)
def load_instance(name: str, seed: int = 0) -> Graph:
    """Build (and memoise) a registry instance."""
    if name not in INSTANCES:
        raise KeyError(f"unknown instance {name!r}; known: {sorted(INSTANCES)}")
    return INSTANCES[name].build(seed)


@lru_cache(maxsize=64)
def family_instance(family: str, exponent: int, seed: int = 0) -> Graph:
    """Scaled ``delX`` / ``rggX`` family member (paper Section V-A).

    The paper uses exponents 19..31; our pure-Python scaling studies use
    10..16, which keeps the same two-orders-of-magnitude span between the
    smallest and largest member.
    """
    if family == "del":
        return delaunay(exponent, seed=seed)
    if family == "rgg":
        return rgg(exponent, seed=seed)
    raise KeyError(f"unknown family {family!r}; known: 'del', 'rgg'")
