"""Preferential-attachment generators — social-network stand-ins.

* :func:`barabasi_albert` — the classic BA model: each new node attaches
  to ``m`` existing nodes with probability proportional to degree,
  producing a power-law degree distribution.
* :func:`powerlaw_cluster` — the Holme–Kim variant: after each
  preferential attachment, with probability ``p`` the next link closes a
  triangle instead.  This adds the high local clustering real social
  networks have (amazon, youtube in Table I), which is exactly the
  structure label-propagation coarsening exploits.

Both use the repeated-nodes urn so that sampling proportional to degree
is an O(1) array lookup.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_edges
from ..graph.csr import Graph

__all__ = ["barabasi_albert", "powerlaw_cluster"]


def barabasi_albert(num_nodes: int, attach: int = 4, seed: int = 0, name: str | None = None) -> Graph:
    """Barabási–Albert graph: ``num_nodes`` nodes, ``attach`` links per new node."""
    return _preferential(num_nodes, attach, triad_probability=0.0, seed=seed,
                         name=name or f"ba-n{num_nodes}-m{attach}")


def powerlaw_cluster(
    num_nodes: int,
    attach: int = 4,
    triad_probability: float = 0.5,
    seed: int = 0,
    name: str | None = None,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering."""
    return _preferential(
        num_nodes,
        attach,
        triad_probability=triad_probability,
        seed=seed,
        name=name or f"plc-n{num_nodes}-m{attach}",
    )


def _preferential(
    num_nodes: int, attach: int, triad_probability: float, seed: int, name: str
) -> Graph:
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if num_nodes <= attach:
        raise ValueError("num_nodes must exceed attach")
    rng = np.random.default_rng(seed)

    # Urn of node ids, one copy per degree unit; preallocated at the exact
    # final size 2 * attach * (num_nodes - attach) plus the seed clique.
    seed_nodes = attach + 1
    seed_edges = [(u, v) for u in range(seed_nodes) for v in range(u + 1, seed_nodes)]
    urn = np.empty(2 * len(seed_edges) + 2 * attach * (num_nodes - seed_nodes), dtype=np.int64)
    fill = 0
    for u, v in seed_edges:
        urn[fill] = u
        urn[fill + 1] = v
        fill += 2

    edges: list[tuple[int, int]] = list(seed_edges)
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    for u, v in seed_edges:
        adjacency[u].append(v)
        adjacency[v].append(u)

    for new in range(seed_nodes, num_nodes):
        targets: set[int] = set()
        last_target = -1
        while len(targets) < attach:
            if (
                last_target >= 0
                and triad_probability > 0.0
                and rng.random() < triad_probability
            ):
                # Triad step: link to a random neighbour of the last target.
                nbrs = adjacency[last_target]
                choice = int(nbrs[rng.integers(0, len(nbrs))])
                if choice != new and choice not in targets:
                    targets.add(choice)
                    last_target = choice
                    continue
            choice = int(urn[rng.integers(0, fill)])
            if choice != new and choice not in targets:
                targets.add(choice)
                last_target = choice
        for t in targets:
            edges.append((new, t))
            adjacency[new].append(t)
            adjacency[t].append(new)
            urn[fill] = new
            urn[fill + 1] = t
            fill += 2

    return from_edges(num_nodes, edges, name=name)
