"""Random geometric graphs (the paper's ``rggX`` family).

``rggX`` is a random geometric graph with ``2^X`` nodes: nodes are random
points in the unit square and edges connect pairs at Euclidean distance
below ``0.55 * sqrt(ln n / n)`` — the paper's threshold, chosen so the
graph is almost certainly connected (Section V-A, Table I).

The implementation uses the standard grid-cell technique: the unit square
is tiled with cells of side >= radius, so all neighbours of a point lie in
its own or the eight surrounding cells.  Candidate pairs are generated
cell-against-neighbour-cell with vectorised distance checks, giving the
expected O(n) work of the textbook algorithm rather than the naive O(n^2).
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_coo
from ..graph.csr import Graph

__all__ = ["rgg", "random_geometric_graph", "rgg_radius"]


def rgg_radius(num_nodes: int) -> float:
    """The paper's connectivity radius ``0.55 * sqrt(ln n / n)``."""
    if num_nodes < 2:
        return 1.0
    return 0.55 * float(np.sqrt(np.log(num_nodes) / num_nodes))


def random_geometric_graph(
    num_nodes: int,
    radius: float | None = None,
    seed: int = 0,
    name: str | None = None,
    return_positions: bool = False,
) -> Graph | tuple[Graph, np.ndarray]:
    """Random geometric graph on ``num_nodes`` uniform points in the unit square.

    Parameters
    ----------
    radius:
        Connection radius; defaults to the paper's :func:`rgg_radius`.
    return_positions:
        Also return the ``(n, 2)`` coordinate array (used by the examples
        and by the geometric initial-partitioning baseline).
    """
    rng = np.random.default_rng(seed)
    pos = rng.random((num_nodes, 2))
    r = rgg_radius(num_nodes) if radius is None else float(radius)

    cells_per_side = max(1, int(1.0 / r))
    cell = np.minimum((pos * cells_per_side).astype(np.int64), cells_per_side - 1)
    cell_id = cell[:, 0] * cells_per_side + cell[:, 1]
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]
    # Start offset of every cell in the sorted node order.
    starts = np.searchsorted(sorted_ids, np.arange(cells_per_side * cells_per_side + 1))

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    r2 = r * r
    # Half of the 8-neighbourhood (plus self-cell) suffices: each unordered
    # cell pair is visited once.
    offsets = ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1))
    for cx in range(cells_per_side):
        for dx, dy in offsets:
            nx = cx + dx
            if nx >= cells_per_side:
                continue
            for cy in range(cells_per_side):
                ny = cy + dy
                if not (0 <= ny < cells_per_side):
                    continue
                a_lo, a_hi = starts[cx * cells_per_side + cy], starts[cx * cells_per_side + cy + 1]
                b_lo, b_hi = starts[nx * cells_per_side + ny], starts[nx * cells_per_side + ny + 1]
                if a_hi == a_lo or b_hi == b_lo:
                    continue
                a_nodes = order[a_lo:a_hi]
                b_nodes = order[b_lo:b_hi]
                diff = pos[a_nodes, None, :] - pos[None, b_nodes, :]
                close = (diff[..., 0] ** 2 + diff[..., 1] ** 2) <= r2
                if dx == 0 and dy == 0:
                    close = np.triu(close, k=1)  # avoid self pairs and duplicates
                ai, bi = np.nonzero(close)
                if ai.size:
                    rows.append(a_nodes[ai])
                    cols.append(b_nodes[bi])

    if rows:
        row_arr = np.concatenate(rows)
        col_arr = np.concatenate(cols)
    else:
        row_arr = np.empty(0, dtype=np.int64)
        col_arr = np.empty(0, dtype=np.int64)
    graph = from_coo(num_nodes, row_arr, col_arr, name=name or f"rgg-n{num_nodes}")
    if return_positions:
        return graph, pos
    return graph


def rgg(exponent: int, seed: int = 0, **kwargs) -> Graph:
    """The paper's ``rggX`` notation: a random geometric graph on ``2^X`` nodes."""
    return random_geometric_graph(
        2**exponent, seed=seed, name=f"rgg{exponent}", **kwargs
    )
