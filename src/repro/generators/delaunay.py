"""Delaunay triangulation graphs (the paper's ``delX`` family).

``delX`` is the Delaunay triangulation of ``2^X`` random points in the
unit square (Table I).  We use SciPy's Qhull binding to triangulate and
extract the edge set; the result is a planar mesh-type network with mean
degree just under 6 and no community structure — the class of inputs on
which the paper's cluster coarsening has *no* advantage over
matching-based coarsening.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from ..graph.build import from_coo
from ..graph.csr import Graph

__all__ = ["delaunay", "delaunay_graph"]


def delaunay_graph(
    num_nodes: int,
    seed: int = 0,
    name: str | None = None,
    return_positions: bool = False,
) -> Graph | tuple[Graph, np.ndarray]:
    """Delaunay triangulation of ``num_nodes`` uniform points in the unit square."""
    if num_nodes < 3:
        raise ValueError("a Delaunay triangulation needs at least three points")
    rng = np.random.default_rng(seed)
    pos = rng.random((num_nodes, 2))
    tri = Delaunay(pos)
    # Each simplex contributes its three sides; duplicates merge downstream.
    simplices = tri.simplices
    rows = np.concatenate([simplices[:, 0], simplices[:, 1], simplices[:, 2]])
    cols = np.concatenate([simplices[:, 1], simplices[:, 2], simplices[:, 0]])
    # from_coo merges duplicate undirected edges by *summing* weights; to keep
    # unit weights, deduplicate canonical pairs first.
    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    keys = np.unique(lo * num_nodes + hi)
    graph = from_coo(
        num_nodes, keys // num_nodes, keys % num_nodes, name=name or f"del-n{num_nodes}"
    )
    if return_positions:
        return graph, pos
    return graph


def delaunay(exponent: int, seed: int = 0, **kwargs) -> Graph:
    """The paper's ``delX`` notation: Delaunay triangulation of ``2^X`` points."""
    return delaunay_graph(2**exponent, seed=seed, name=f"del{exponent}", **kwargs)
