"""Regular mesh generators: grids and tori.

Stand-ins for the paper's numeric-simulation instances (``packing``,
``channel``, ``hugebubble``, ``nlpkkt240``) which are all mesh-type
networks: bounded degree, strong locality, good geometric separators, no
community structure.  2D/3D grids and tori reproduce exactly those
properties.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_coo
from ..graph.csr import Graph

__all__ = ["grid_2d", "grid_3d", "torus_2d"]


def _grid_edges(shape: tuple[int, ...], wrap: bool) -> tuple[np.ndarray, np.ndarray]:
    """COO edge arrays connecting lattice neighbours along each axis."""
    coords = np.indices(shape).reshape(len(shape), -1)
    strides = np.array([int(np.prod(shape[i + 1 :])) for i in range(len(shape))])
    flat = (coords * strides[:, None]).sum(axis=0)
    rows = []
    cols = []
    for axis, extent in enumerate(shape):
        if extent < 2:
            continue
        shifted = coords.copy()
        if wrap and extent > 2:
            shifted[axis] = (coords[axis] + 1) % extent
            mask = np.ones(flat.size, dtype=bool)
        else:
            shifted[axis] = coords[axis] + 1
            mask = coords[axis] + 1 < extent
        neighbour = (shifted * strides[:, None]).sum(axis=0)
        rows.append(flat[mask])
        cols.append(neighbour[mask])
    if rows:
        return np.concatenate(rows), np.concatenate(cols)
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


def grid_2d(rows: int, cols: int, name: str | None = None) -> Graph:
    """4-connected ``rows x cols`` grid."""
    r, c = _grid_edges((rows, cols), wrap=False)
    return from_coo(rows * cols, r, c, name=name or f"grid{rows}x{cols}")


def torus_2d(rows: int, cols: int, name: str | None = None) -> Graph:
    """``rows x cols`` torus (grid with wraparound, all degrees 4)."""
    r, c = _grid_edges((rows, cols), wrap=True)
    return from_coo(rows * cols, r, c, name=name or f"torus{rows}x{cols}")


def grid_3d(nx: int, ny: int, nz: int, name: str | None = None) -> Graph:
    """6-connected 3D grid (the FEM-mesh stand-in)."""
    r, c = _grid_edges((nx, ny, nz), wrap=False)
    return from_coo(nx * ny * nz, r, c, name=name or f"grid{nx}x{ny}x{nz}")
