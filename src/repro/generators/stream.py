"""Streaming generators: emit sharded graphs without materializing them.

The in-RAM generators (:mod:`repro.generators.rmat`, ``ba``,
``webgraph``) build the whole edge list before CSR assembly, which caps
them at graphs that fit in memory — exactly the regime the out-of-core
store exists to escape.  The writers here generate edges in bounded
batches, spill them to per-shard bucket files on disk, and assemble one
shard at a time through :class:`~repro.graph.store.ShardedWriter`, so
peak memory is O(n + batch + one shard) regardless of the arc count.

The models match their in-RAM counterparts structurally (R-MAT quadrant
recursion, preferential attachment, host-community copying model) but
are *not* bit-identical to them: batching changes the RNG consumption
order, and per-node target sets are deduplicated globally rather than
resampled.  Sharded outputs are deterministic per (seed, parameters).

The spill-and-sort pass is the external-memory CSR construction of the
semi-external partitioning recipe (arXiv:1404.4887): every arc ``(u, v)``
is appended to the bucket owning ``u`` (both directions of an edge, so
the result is symmetric), then each bucket is independently sorted,
deduplicated and written as one shard — global deduplication falls out
because all copies of an arc land in the same bucket.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from ..graph.store import DEFAULT_NODES_PER_SHARD, ShardedWriter
from .webgraph import web_copy_graph

__all__ = ["EdgeSpill", "rmat_shards", "ba_shards", "web_shards"]

#: spill-buffer flush threshold per bucket (bytes of raw arc pairs)
_FLUSH_BYTES = 4 << 20


class EdgeSpill:
    """Disk-backed arc buckets feeding a :class:`ShardedWriter`.

    :meth:`add_edges` appends undirected edges (both arc directions, one
    into each endpoint's bucket); :meth:`finalize` sorts and dedupes one
    bucket at a time — dropping self-loops and parallel edges — and
    writes it as one shard.  Only one bucket's arcs are in RAM at once.
    """

    def __init__(
        self,
        num_nodes: int,
        nodes_per_shard: int = DEFAULT_NODES_PER_SHARD,
        spill_dir: str | Path | None = None,
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.nodes_per_shard = int(nodes_per_shard)
        self.num_buckets = max(
            1, -(-self.num_nodes // self.nodes_per_shard)
        )
        self._own_dir = spill_dir is None
        self._dir = Path(
            tempfile.mkdtemp(prefix="repro-spill-") if spill_dir is None
            else spill_dir
        )
        self._dir.mkdir(parents=True, exist_ok=True)
        self._pending: list[list[bytes]] = [[] for _ in range(self.num_buckets)]
        self._pending_bytes = [0] * self.num_buckets

    def _bucket_path(self, bucket: int) -> Path:
        return self._dir / f"bucket-{bucket:05d}.pairs"

    def add_edges(self, u: np.ndarray, v: np.ndarray) -> None:
        """Append undirected edges; self-loops are dropped here."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        keep = u != v
        if not keep.all():
            u, v = u[keep], v[keep]
        if u.size == 0:
            return
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        self._append_arcs(src, dst)

    def _append_arcs(self, src: np.ndarray, dst: np.ndarray) -> None:
        buckets = src // self.nodes_per_shard
        order = np.argsort(buckets, kind="stable")
        buckets_sorted = buckets[order]
        heads = np.flatnonzero(
            np.concatenate(([True], buckets_sorted[1:] != buckets_sorted[:-1]))
        )
        bounds = np.append(heads, buckets_sorted.size)
        for pos in range(heads.size):
            sel = order[bounds[pos] : bounds[pos + 1]]
            bucket = int(buckets_sorted[heads[pos]])
            blob = np.column_stack((src[sel], dst[sel])).tobytes()
            self._pending[bucket].append(blob)
            self._pending_bytes[bucket] += len(blob)
            if self._pending_bytes[bucket] >= _FLUSH_BYTES:
                self._flush(bucket)

    def _flush(self, bucket: int) -> None:
        if not self._pending[bucket]:
            return
        with open(self._bucket_path(bucket), "ab") as handle:
            for blob in self._pending[bucket]:
                handle.write(blob)
        self._pending[bucket] = []
        self._pending_bytes[bucket] = 0

    def finalize(
        self,
        out_dir: str | Path,
        name: str = "graph",
        vwgt: np.ndarray | None = None,
    ) -> Path:
        """Assemble the shards; returns the manifest path.

        Consumes the spill: bucket files are deleted as they are folded
        into shards, and the spill directory (when owned) is removed.
        """
        writer = ShardedWriter(
            out_dir, self.num_nodes, nodes_per_shard=self.nodes_per_shard,
            name=name,
        )
        try:
            for bucket in range(self.num_buckets):
                lo = bucket * self.nodes_per_shard
                hi = min(lo + self.nodes_per_shard, self.num_nodes)
                self._flush(bucket)
                path = self._bucket_path(bucket)
                if path.is_file():
                    pairs = np.fromfile(path, dtype=np.int64).reshape(-1, 2)
                    path.unlink()
                else:
                    pairs = np.empty((0, 2), dtype=np.int64)
                rel = pairs[:, 0] - lo
                # One sortable key per arc dedupes parallel edges and
                # yields neighbour-sorted adjacency lists in one pass.
                keys = np.unique(rel * self.num_nodes + pairs[:, 1])
                degrees = np.bincount(
                    keys // self.num_nodes, minlength=hi - lo
                ).astype(np.int64)
                writer.add_shard(degrees, keys % self.num_nodes)
            return writer.finish(vwgt=vwgt)
        finally:
            if self._own_dir:
                shutil.rmtree(self._dir, ignore_errors=True)


def rmat_shards(
    out_dir: str | Path,
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    nodes_per_shard: int = DEFAULT_NODES_PER_SHARD,
    batch_draws: int = 1 << 18,
    name: str | None = None,
) -> Path:
    """Sharded R-MAT graph with ``2^scale`` nodes, generated in batches.

    Same quadrant recursion, node-id scrambling and dedupe semantics as
    :func:`repro.generators.rmat.rmat`, but edge draws come in batches of
    ``batch_draws`` so peak memory is O(n + batch) — the generated graph
    differs from the in-RAM one for the same seed (batched RNG order).
    Returns the manifest path.
    """
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum to <= 1")
    n = 2**scale
    num_draws = edge_factor * n
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    powers = 2 ** np.arange(scale - 1, -1, -1, dtype=np.int64)
    p_col_given_row0 = b / (a + b) if (a + b) > 0 else 0.0
    p_col_given_row1 = d / (c + d) if (c + d) > 0 else 0.0

    spill = EdgeSpill(n, nodes_per_shard=nodes_per_shard)
    drawn = 0
    while drawn < num_draws:
        count = min(batch_draws, num_draws - drawn)
        drawn += count
        u = rng.random((count, scale))
        v = rng.random((count, scale))
        row_bits = u >= (a + b)
        col_threshold = np.where(row_bits, p_col_given_row1, p_col_given_row0)
        col_bits = v < col_threshold
        rows = perm[(row_bits * powers).sum(axis=1)]
        cols = perm[(col_bits * powers).sum(axis=1)]
        spill.add_edges(rows, cols)
    return spill.finalize(out_dir, name=name or f"rmat{scale}")


def ba_shards(
    out_dir: str | Path,
    num_nodes: int,
    attach: int = 4,
    seed: int = 0,
    nodes_per_shard: int = DEFAULT_NODES_PER_SHARD,
    batch_nodes: int = 1 << 16,
    name: str | None = None,
) -> Path:
    """Sharded preferential-attachment graph, generated in node batches.

    Batched Barabási–Albert: nodes arrive in batches of ``batch_nodes``
    and attach to ``attach`` endpoints sampled from the degree-urn *as of
    the batch start* (a standard parallel-BA approximation; duplicate
    picks merge, so realised degrees can fall slightly below ``attach``).
    The urn lives in a disk-backed memmap, keeping RAM at O(n + batch).
    Returns the manifest path.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if num_nodes <= attach:
        raise ValueError("num_nodes must exceed attach")
    rng = np.random.default_rng(seed)
    seed_nodes = attach + 1
    seed_edges = [
        (u, v) for u in range(seed_nodes) for v in range(u + 1, seed_nodes)
    ]
    urn_capacity = 2 * len(seed_edges) + 2 * attach * (num_nodes - seed_nodes)

    spill = EdgeSpill(num_nodes, nodes_per_shard=nodes_per_shard)
    with tempfile.TemporaryDirectory(prefix="repro-urn-") as urn_dir:
        urn = np.memmap(
            Path(urn_dir) / "urn.i64", dtype=np.int64, mode="w+",
            shape=(urn_capacity,),
        )
        seed_arr = np.asarray(seed_edges, dtype=np.int64)
        urn[: 2 * len(seed_edges)] = seed_arr.reshape(-1)
        fill = 2 * len(seed_edges)
        spill.add_edges(seed_arr[:, 0], seed_arr[:, 1])

        start = seed_nodes
        while start < num_nodes:
            stop = min(start + batch_nodes, num_nodes)
            count = stop - start
            picks = rng.integers(0, fill, size=(count, attach))
            targets = np.asarray(urn[:fill])[picks]
            sources = np.repeat(
                np.arange(start, stop, dtype=np.int64), attach
            )
            flat_targets = targets.reshape(-1)
            spill.add_edges(sources, flat_targets)
            grow = np.column_stack((sources, flat_targets)).reshape(-1)
            urn[fill : fill + grow.size] = grow
            fill += grow.size
            start = stop
        del urn
    return spill.finalize(
        out_dir, name=name or f"ba-n{num_nodes}-m{attach}"
    )


def web_shards(
    out_dir: str | Path,
    num_nodes: int,
    out_degree: int = 7,
    copy_probability: float = 0.7,
    host_size: int = 4096,
    inter_host_probability: float = 0.05,
    leaf_fraction: float = 0.45,
    seed: int = 0,
    nodes_per_shard: int = DEFAULT_NODES_PER_SHARD,
    name: str | None = None,
) -> Path:
    """Sharded web-crawl-like graph with contiguous host communities.

    Hosts are contiguous node ranges of ``host_size`` pages; each host's
    internal copying-model structure is generated in RAM (hosts are
    small) by :func:`~repro.generators.webgraph.web_copy_graph` and
    spilled, then ``inter_host_probability`` extra links per page connect
    random pages of earlier hosts — so cross-host structure exists
    without ever holding more than one host in memory.  Returns the
    manifest path.
    """
    if host_size < 8:
        raise ValueError("host_size must be >= 8")
    rng = np.random.default_rng(seed)
    spill = EdgeSpill(num_nodes, nodes_per_shard=nodes_per_shard)
    for base in range(0, num_nodes, host_size):
        size = min(host_size, num_nodes - base)
        if size < 2:
            if base > 0:
                spill.add_edges(
                    np.arange(base, base + size, dtype=np.int64),
                    rng.integers(0, base, size=size),
                )
            continue
        host = web_copy_graph(
            size, out_degree=out_degree, copy_probability=copy_probability,
            hosts=1, leaf_fraction=leaf_fraction,
            seed=int(rng.integers(0, 2**31)),
        )
        sources = host.arc_sources()
        targets = host.adjncy
        upper = sources < targets
        spill.add_edges(sources[upper] + base, targets[upper] + base)
        if base > 0:
            links = max(1, int(inter_host_probability * size))
            spill.add_edges(
                base + rng.integers(0, size, size=links),
                rng.integers(0, base, size=links),
            )
    return spill.finalize(out_dir, name=name or f"web-n{num_nodes}")
