"""Top-level convenience API.

:func:`partition_graph` is the one-call entry point a downstream user
needs: pick a configuration (fast/eco/minimal), a number of simulated
PEs, and get a validated partition back with its quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.config import PartitionConfig, eco_config, fast_config, minimal_config
from .core.partitioner import sequential_partition
from .dist.dist_partitioner import parallel_partition
from .engine.backend import resolve_backend
from .graph.csr import Graph
from .graph.validation import check_partition, max_block_weight_bound
from .metrics.quality import PartitionQuality, evaluate_partition_streaming
from .obsv.tracer import TRACER
from .perf.machine import Machine
from .perf.rss import memory_sample

__all__ = ["PartitionResult", "partition_graph", "partition_oocore"]

_PRESETS = {
    "fast": fast_config,
    "eco": eco_config,
    "minimal": minimal_config,
}


@dataclass(frozen=True)
class PartitionResult:
    """Partition plus quality and (for parallel runs) simulated timing."""

    partition: np.ndarray
    quality: PartitionQuality
    config: PartitionConfig
    num_pes: int
    sim_time: float | None  # simulated seconds; None for sequential runs

    @property
    def cut(self) -> int:
        return self.quality.cut

    @property
    def imbalance(self) -> float:
        return self.quality.imbalance


def partition_graph(
    graph: Graph,
    k: int,
    epsilon: float = 0.03,
    preset: str = "fast",
    num_pes: int = 1,
    machine: Machine | None = None,
    seed: int = 0,
    config: PartitionConfig | None = None,
    initial_partition: np.ndarray | None = None,
    backend: str | None = None,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` blocks with the ParHIP reproduction.

    Parameters
    ----------
    preset:
        ``'fast'`` | ``'eco'`` | ``'minimal'`` (paper Section V-A);
        ignored when an explicit ``config`` is given.
    num_pes:
        Number of simulated PEs.  1 runs the sequential algorithm;
        more runs the full parallel system on the simulated runtime.
    machine:
        Optional machine model for simulated timing (parallel runs).
    initial_partition:
        Optional prepartition (e.g. a geographic initialisation, the
        paper's future-work scenario): its cut edges are protected in
        the first V-cycle, and if it is balanced the result is never
        worse than it.
    backend:
        Execution backend for parallel runs: ``'spmd'`` (simulated
        threads, the default), ``'process'`` (real OS processes over
        shared-memory CSR), or ``'local'`` (force the sequential
        algorithm regardless of ``num_pes``).  ``None`` defers to
        ``REPRO_BACKEND``; an explicit argument always wins over the
        environment.

    Returns
    -------
    A validated :class:`PartitionResult`.
    """
    if config is None:
        if preset not in _PRESETS:
            raise ValueError(f"unknown preset {preset!r}; choose from {sorted(_PRESETS)}")
        config = _PRESETS[preset](k=k, epsilon=epsilon)
    resolved_backend = resolve_backend(backend)
    if not graph.resident:
        if num_pes <= 1 or resolved_backend == "local":
            # Out-of-core store: the multilevel pipeline would materialize
            # the arc arrays, so route to the semi-external flat path.
            return partition_oocore(
                graph, k, epsilon=epsilon, seed=seed, config=config,
            )
        # The distributed pipelines slice per-rank subgraphs, which in
        # aggregate hold the whole arc set anyway — materialize up front
        # so the slicing sees plain arrays.
        graph = graph.materialized()
    if num_pes <= 1 or resolved_backend == "local":
        result = sequential_partition(graph, config, seed=seed,
                                      input_partition=initial_partition)
        out = PartitionResult(result.partition, result.quality, config, 1, None)
    else:
        presult = parallel_partition(
            graph, config, num_pes=num_pes, machine=machine, seed=seed,
            initial_partition=initial_partition, backend=resolved_backend,
        )
        out = PartitionResult(
            presult.partition, presult.quality, config, num_pes, presult.sim_time
        )
    if graph.num_nodes:
        check_partition(graph, out.partition, config.k, epsilon=None)
    if TRACER.enabled:
        # Final quality gauges feed the run.json quality block; the
        # sequential path also stamps backend/p (parallel runs are
        # annotated by the SPMD runtime itself).
        if out.num_pes == 1:
            TRACER.annotate_header(backend="local", p=1)
            # Local runs have no per-rank workers to sample memory, so
            # stamp rank 0 here — this feeds run.json's memory section.
            TRACER.event("mem.rank", rank=0, shared=False, **memory_sample())
        TRACER.metrics.gauge("partition.cut").set(float(out.quality.cut))
        TRACER.metrics.gauge("partition.imbalance").set(float(out.quality.imbalance))
    return out


def partition_oocore(
    graph: Graph,
    k: int,
    epsilon: float = 0.03,
    seed: int = 0,
    iterations: int = 16,
    chunk: int = 4096,
    engine: str = "frontier",
    config: PartitionConfig | None = None,
) -> PartitionResult:
    """Partition a (possibly out-of-core) graph with flat semi-external SCLP.

    The semi-external regime of arXiv:1404.4887: all O(n) state (labels,
    ``xadj``, ``vwgt``, block weights) stays in RAM while the O(m) arc
    arrays are streamed from the graph's store in shard-aligned chunks —
    ``ordering='node'`` visits nodes in natural order, so each chunk
    window touches one shard.  Works on any store; on an
    :class:`~repro.graph.store.InMemoryStore` it produces bit-identical
    labels to the same call on a sharded store (test-enforced), which is
    what makes the out-of-core path verifiable.

    Unlike :func:`partition_graph`'s multilevel pipeline this is a flat
    partitioner: balanced striped initialisation refined by
    size-constrained label propagation.  Cuts are accordingly coarser;
    the point is partitioning graphs whose arc arrays do not fit in RAM.
    """
    from .engine.backend import LocalBackend
    from .engine.sclp import run_sclp

    if config is None:
        config = fast_config(k=k, epsilon=epsilon)
    n = graph.num_nodes
    vwgt = graph.vwgt
    total = int(vwgt.sum())
    bound = max_block_weight_bound(graph, k, epsilon)
    # Weight-balanced striped initialisation: node v starts in the block
    # owning its prefix-weight interval, so every block starts within
    # ceil(W/k) of the average and the bound holds from phase zero.
    if n:
        prefix = np.cumsum(vwgt, dtype=np.int64) - vwgt
        labels = np.minimum((prefix * k) // max(1, total), k - 1)
    else:
        labels = np.zeros(0, dtype=np.int64)
    backend = LocalBackend(graph, np.random.default_rng(seed))
    labels = run_sclp(
        backend,
        labels,
        bound,
        iterations,
        refine=True,
        shares=False,
        k=k,
        ordering="node",
        chunk=backend.clamp_chunk(chunk),
        engine=engine,
        tie_seed=seed,
    )
    quality = evaluate_partition_streaming(graph, labels, k)
    out = PartitionResult(labels, quality, config, 1, None)
    if n:
        check_partition(graph, out.partition, k, epsilon=None)
    if TRACER.enabled:
        TRACER.annotate_header(
            backend="local", p=1, store=type(graph.store).__name__,
        )
        TRACER.event("mem.rank", rank=0, shared=False, **memory_sample())
        TRACER.metrics.gauge("partition.cut").set(float(quality.cut))
        TRACER.metrics.gauge("partition.imbalance").set(float(quality.imbalance))
    return out
