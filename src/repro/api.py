"""Top-level convenience API.

:func:`partition_graph` is the one-call entry point a downstream user
needs: pick a configuration (fast/eco/minimal), a number of simulated
PEs, and get a validated partition back with its quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.config import PartitionConfig, eco_config, fast_config, minimal_config
from .core.partitioner import sequential_partition
from .dist.dist_partitioner import parallel_partition
from .engine.backend import resolve_backend
from .graph.csr import Graph
from .graph.validation import check_partition
from .metrics.quality import PartitionQuality
from .obsv.tracer import TRACER
from .perf.machine import Machine

__all__ = ["PartitionResult", "partition_graph"]

_PRESETS = {
    "fast": fast_config,
    "eco": eco_config,
    "minimal": minimal_config,
}


@dataclass(frozen=True)
class PartitionResult:
    """Partition plus quality and (for parallel runs) simulated timing."""

    partition: np.ndarray
    quality: PartitionQuality
    config: PartitionConfig
    num_pes: int
    sim_time: float | None  # simulated seconds; None for sequential runs

    @property
    def cut(self) -> int:
        return self.quality.cut

    @property
    def imbalance(self) -> float:
        return self.quality.imbalance


def partition_graph(
    graph: Graph,
    k: int,
    epsilon: float = 0.03,
    preset: str = "fast",
    num_pes: int = 1,
    machine: Machine | None = None,
    seed: int = 0,
    config: PartitionConfig | None = None,
    initial_partition: np.ndarray | None = None,
    backend: str | None = None,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` blocks with the ParHIP reproduction.

    Parameters
    ----------
    preset:
        ``'fast'`` | ``'eco'`` | ``'minimal'`` (paper Section V-A);
        ignored when an explicit ``config`` is given.
    num_pes:
        Number of simulated PEs.  1 runs the sequential algorithm;
        more runs the full parallel system on the simulated runtime.
    machine:
        Optional machine model for simulated timing (parallel runs).
    initial_partition:
        Optional prepartition (e.g. a geographic initialisation, the
        paper's future-work scenario): its cut edges are protected in
        the first V-cycle, and if it is balanced the result is never
        worse than it.
    backend:
        Execution backend for parallel runs: ``'spmd'`` (simulated
        threads, the default), ``'process'`` (real OS processes over
        shared-memory CSR), or ``'local'`` (force the sequential
        algorithm regardless of ``num_pes``).  ``None`` defers to
        ``REPRO_BACKEND``; an explicit argument always wins over the
        environment.

    Returns
    -------
    A validated :class:`PartitionResult`.
    """
    if config is None:
        if preset not in _PRESETS:
            raise ValueError(f"unknown preset {preset!r}; choose from {sorted(_PRESETS)}")
        config = _PRESETS[preset](k=k, epsilon=epsilon)
    resolved_backend = resolve_backend(backend)
    if num_pes <= 1 or resolved_backend == "local":
        result = sequential_partition(graph, config, seed=seed,
                                      input_partition=initial_partition)
        out = PartitionResult(result.partition, result.quality, config, 1, None)
    else:
        presult = parallel_partition(
            graph, config, num_pes=num_pes, machine=machine, seed=seed,
            initial_partition=initial_partition, backend=resolved_backend,
        )
        out = PartitionResult(
            presult.partition, presult.quality, config, num_pes, presult.sim_time
        )
    if graph.num_nodes:
        check_partition(graph, out.partition, config.k, epsilon=None)
    if TRACER.enabled:
        # Final quality gauges feed the run.json quality block; the
        # sequential path also stamps backend/p (parallel runs are
        # annotated by the SPMD runtime itself).
        if out.num_pes == 1:
            TRACER.annotate_header(backend="local", p=1)
        TRACER.metrics.gauge("partition.cut").set(float(out.quality.cut))
        TRACER.metrics.gauge("partition.imbalance").set(float(out.quality.imbalance))
    return out
