"""``python -m repro`` dispatches to the CLI."""

import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:  # e.g. `repro report ... | head`
    sys.exit(0)
