"""E1 — Table I: properties of the benchmark set (scaled stand-ins).

Regenerates the instance table: for every row of the paper's Table I,
the stand-in's size, class, degree statistics, and the scale factor to
the original.
"""

from __future__ import annotations

from repro.bench import format_table, write_report
from repro.graph import degree_statistics
from repro.generators import INSTANCES, load_instance


def build_table() -> str:
    rows = []
    for name, inst in INSTANCES.items():
        graph = load_instance(name, seed=0)
        stats = degree_statistics(graph)
        rows.append([
            name,
            inst.kind,
            inst.group,
            f"{graph.num_nodes:,}",
            f"{graph.num_edges:,}",
            f"{stats.mean_degree:.1f}",
            f"{stats.max_degree}",
            f"{inst.paper_nodes:.2g}",
            f"{inst.paper_edges:.2g}",
            f"{inst.paper_edges / graph.num_edges:,.0f}x",
        ])
    return format_table(
        "Table I (stand-ins): benchmark set properties",
        ["graph", "type", "group", "n", "m", "avg deg", "max deg",
         "paper n", "paper m", "scale"],
        rows,
    )


def test_table1_instances(run_once):
    report = run_once(build_table)
    write_report("table1_instances", report)
    assert "uk-2007" in report
