"""E7 — coarsening effectiveness (paper Section V-B, in-text numbers).

The paper's diagnosis in one table: on a web graph, *one* cluster-
contraction step shrinks the node count by about two orders of magnitude
and the edge count by a factor of ~300, while matching-based coarsening
achieves less than a factor-of-two reduction before stalling.  On mesh
networks both schemes behave similarly (matching halves; clustering with
the mesh factor degenerates to pairwise merging).
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, write_report
from repro.core import coarsen, fast_config
from repro.generators import INSTANCES, load_instance
from repro.kaffpa import match_and_contract
from repro.graph import max_block_weight_bound


def run_experiment() -> str:
    rows = []
    for name in ("uk-2007", "sk-2005", "eu-2005", "rgg26", "hugebubbles"):
        graph = load_instance(name, seed=0)
        kind = INSTANCES[name].kind
        rng = np.random.default_rng(0)
        lmax = max_block_weight_bound(graph, 2, 0.03)

        matched = match_and_contract(
            graph, rng, max_node_weight=max(1, int(lmax / 1.3))
        ).coarse
        config = fast_config(k=2, social=(kind == "S"))
        hierarchy = coarsen(graph, config, np.random.default_rng(0),
                            cluster_factor=14.0 if kind == "S" else 20_000.0)
        clustered = hierarchy.levels[0].coarse if hierarchy.levels else graph

        rows.append([
            name,
            kind,
            f"{graph.num_nodes:,}",
            f"{graph.num_edges:,}",
            f"{graph.num_nodes / max(1, matched.num_nodes):.1f}x",
            f"{graph.num_edges / max(1, matched.num_edges):.1f}x",
            f"{graph.num_nodes / max(1, clustered.num_nodes):.0f}x",
            f"{graph.num_edges / max(1, clustered.num_edges):.0f}x",
        ])
    table = format_table(
        "Coarsening effectiveness: one matching step vs one cluster-contraction step",
        ["graph", "type", "n", "m", "match n-shrink", "match m-shrink",
         "cluster n-shrink", "cluster m-shrink"],
        rows,
    )
    return table + (
        "Paper reference (uk-2007): cluster contraction ~100x fewer nodes and "
        "~300x fewer edges in one step; matching <2x before ParMetis stops.\n"
    )


def test_coarsening_effectiveness(run_once):
    report = run_once(run_experiment)
    write_report("coarsening_effectiveness", report)
    assert "cluster n-shrink" in report
