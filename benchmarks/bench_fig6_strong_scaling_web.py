"""E6 — Figure 6 (bottom): strong scaling on the largest web/social graphs.

Paper findings reproduced at scaled size and PE counts:

* the ParMetis-like baseline cannot partition any of these graphs on
  machine B (ineffective coarsening -> replication -> out of memory);
* the two largest graphs have *minimum PE counts* (paper: sk-2005 needs
  256, uk-2007 needs 512 of 4 GB-share PEs; scaled here they need 24 and
  48 of our simulated PEs with the same per-node memory model);
* the minimal configuration is markedly faster than fast on uk-2007 at
  the largest PE count (the paper's 15.2 s vs ~47 s data point), at an
  ~18 % cut penalty.

A working-set factor of 1.1 on the byte scale accounts for halo/buffer
overhead beyond the raw CSR arrays.
"""

from __future__ import annotations

from repro.bench import format_series, memory_scale_for, run_algorithm, write_report
from repro.generators import load_instance
from repro.perf import MACHINE_B

PES = (1, 2, 4, 8, 16, 24, 32, 48)
K = 16
WORKING_SET_FACTOR = 1.1
GRAPHS = ("uk-2002", "arabic-2005", "sk-2005", "uk-2007")


def run_figure() -> str:
    series: dict[str, dict] = {}
    notes: list[str] = []
    for name in GRAPHS:
        graph = load_instance(name, seed=0)
        key = f"fast-{name}"
        series[key] = {}
        min_p = None
        for p in PES:
            row = run_algorithm("fast", graph, name, k=K, num_pes=p,
                                machine=MACHINE_B, seeds=1, sim_pes=p,
                                enforce_memory=True,
                                working_set_factor=WORKING_SET_FACTOR)
            series[key][p] = None if row.oom else row.avg_time
            if not row.oom and min_p is None:
                min_p = p
        notes.append(f"  {name}: minimum feasible PE count = {min_p}")
        # ParMetis-like at a representative PE count: expected OOM.
        pm = run_algorithm("parmetis", graph, name, k=K, num_pes=16,
                           machine=MACHINE_B, seeds=1, enforce_memory=True,
                           working_set_factor=WORKING_SET_FACTOR)
        notes.append(
            f"  {name}: ParMetis-like on machine B: "
            + ("out of memory (paper: cannot partition any of these)"
               if pm.oom else f"unexpectedly fit (cut {pm.avg_cut:,.0f})")
        )

    # minimal vs fast on the largest graph at the largest PE count
    uk = load_instance("uk-2007", seed=0)
    p_top = PES[-1]
    fast = run_algorithm("fast", uk, "uk-2007", k=K, num_pes=p_top,
                         machine=MACHINE_B, seeds=1, sim_pes=p_top)
    minimal = run_algorithm("minimal", uk, "uk-2007", k=K, num_pes=p_top,
                            machine=MACHINE_B, seeds=1, sim_pes=p_top)
    series["minimal-uk-2007"] = {p_top: minimal.avg_time}
    speedup = fast.avg_time / minimal.avg_time if minimal.avg_time else 0.0
    penalty = (minimal.avg_cut / fast.avg_cut - 1.0) * 100.0 if fast.avg_cut else 0.0
    notes.append(
        f"  uk-2007 @ p={p_top}: minimal is {speedup:.1f}x faster than fast "
        f"with a {penalty:+.1f} % cut penalty (paper: ~3x faster, +18.2 %)"
    )

    table = format_series(
        "Figure 6 (bottom): strong scaling on web graphs — total simulated "
        "seconds, k=16, machine B ('*' = simulated out of memory)",
        "p", series,
    )
    return "\n".join([table, *notes])


def test_fig6_strong_scaling_web(run_once):
    report = run_once(run_figure)
    write_report("fig6_strong_scaling_web", report)
    assert "minimum feasible PE count" in report
