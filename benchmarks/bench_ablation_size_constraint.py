"""A2 — ablation: the size-constraint factor f (Section V-A defaults).

The cluster bound is ``U = Lmax / f``.  The paper sets f = 14 on
social/web graphs and f = 20 000 on meshes in the first V-cycle, and
draws f in [10, 25] later.  This ablation sweeps f on one instance of
each class and reports the end-to-end cut plus the depth/size of the
hierarchy, showing why the defaults differ per class: small f (big
clusters) over-contracts meshes, huge f (tiny clusters) wastes the
community structure of web graphs.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, write_report
from repro.core import coarsen, fast_config, multilevel_partition
from repro.generators import load_instance
from repro.metrics import edge_cut

FACTORS = (4.0, 14.0, 100.0, 20_000.0)


def run_experiment() -> str:
    rows = []
    for name, social in (("uk-2002", True), ("rgg26", False)):
        graph = load_instance(name, seed=0)
        config = fast_config(k=2, social=social, num_vcycles=1)
        for f in FACTORS:
            hierarchy = coarsen(graph, config, np.random.default_rng(0), cluster_factor=f)
            cuts = []
            for seed in range(2):
                part = multilevel_partition(
                    graph, config, np.random.default_rng(seed), cluster_factor=f
                )
                cuts.append(edge_cut(graph, part))
            rows.append([
                name, f"{f:g}",
                f"{hierarchy.depth}",
                f"{hierarchy.coarsest.num_nodes:,}",
                f"{np.mean(cuts):,.0f}",
            ])
    table = format_table(
        "Ablation A2: size-constraint factor f (U = Lmax/f), k=2, one V-cycle",
        ["graph", "f", "levels", "coarsest n", "avg cut"],
        rows,
    )
    return table + (
        "Paper defaults: f=14 on social/web, f=20000 on meshes; the overall "
        "performance is not sensitive to the exact value (Section IV-B).\n"
    )


def test_ablation_size_constraint(run_once):
    report = run_once(run_experiment)
    write_report("ablation_size_constraint", report)
    assert "coarsest n" in report
