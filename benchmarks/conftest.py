"""Shared helpers for the experiment benchmarks.

Every ``bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md, experiment index).  Conventions:

* each experiment runs once under ``benchmark.pedantic(rounds=1)`` — the
  interesting measurements are the *simulated* times and cut values the
  experiment itself reports, not the harness wall-clock;
* every experiment writes its report to ``benchmarks/results/<exp>.txt``
  (and prints it), so ``pytest benchmarks/ --benchmark-only`` leaves the
  full set of regenerated tables on disk;
* repetition counts honour ``REPRO_BENCH_SEEDS`` (default 3; the paper
  uses 10 — set the variable for a closer protocol at more wall-clock).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
