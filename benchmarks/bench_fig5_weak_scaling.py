"""E4 — Figure 5: weak scaling on rggX and delX, k = 16, machine B.

When using ``p`` PEs, the instance with ``2^b * p`` nodes is used
(paper: b = 19; scaled here to b = 9, the same relative span).  The
figure plots *time per edge*: ParHIP's curve should stay flat-to-
descending; the ParMetis-like baseline is flatter/faster per edge but
cuts more.  Quality summary (paper): fast cuts 19.5 % less on rgg and
11.5 % less on del than ParMetis.
"""

from __future__ import annotations

from repro.bench import format_series, geometric_mean, run_algorithm, write_report
from repro.generators import family_instance
from repro.perf import MACHINE_B

BASE_EXPONENT = 9
PES = (1, 2, 4, 8, 16)
K = 16


def run_figure() -> str:
    series: dict[str, dict] = {}
    quality: dict[str, list[float]] = {"rgg": [], "del": []}
    for family in ("del", "rgg"):
        for algo in ("fast", "parmetis"):
            series[f"{family}-{algo}"] = {}
    for family in ("del", "rgg"):
        for p in PES:
            exponent = BASE_EXPONENT + int(p).bit_length() - 1  # 2^b * p nodes
            graph = family_instance(family, exponent, seed=0)
            fast = run_algorithm(
                "fast", graph, f"{family}{exponent}", k=K, num_pes=p,
                machine=MACHINE_B, seeds=2, sim_pes=p,
            )
            pm = run_algorithm(
                "parmetis", graph, f"{family}{exponent}", k=K, num_pes=p,
                machine=MACHINE_B, seeds=2,
            )
            series[f"{family}-fast"][p] = fast.avg_time / graph.num_edges
            series[f"{family}-parmetis"][p] = pm.avg_time / graph.num_edges
            if fast.avg_cut and pm.avg_cut:
                quality[family].append(fast.avg_cut / pm.avg_cut)

    table = format_series(
        "Figure 5: weak scaling, seconds per edge (simulated), k=16, machine B",
        "p", series,
    )
    lines = [table, "Quality summary over the sweep (geometric mean):"]
    paper_ref = {"rgg": "19.5 %", "del": "11.5 %"}
    for family in ("rgg", "del"):
        red = (1.0 - geometric_mean(quality[family])) * 100.0
        lines.append(f"  fast cuts {red:+.1f} % less than ParMetis on {family}X "
                     f"(paper: {paper_ref[family]})")
    return "\n".join(lines)


def test_fig5_weak_scaling(run_once):
    report = run_once(run_figure)
    write_report("fig5_weak_scaling", report)
    assert "Figure 5" in report
