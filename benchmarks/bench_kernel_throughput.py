"""Perf-regression harness for the partitioning hot paths.

Not a paper artifact — a throughput baseline in the spirit of the
optimisation guides (measure first, compare always).  Running this
module as a script measures ops/sec for

* sequential label propagation, scan engine vs chunked kernels,
* the distributed halo exchange,
* parallel contraction,

each on an RMAT and a mesh instance, plus the headline number: parallel
cluster-mode LP at 4 simulated PEs on a 2^15-node RMAT graph — scan vs
chunked-full vs frontier vs the adaptive engine, in both the 3-iteration
churn regime and the converged regime, with p=8 scaling rows for the
chunked engines.  The ``proc_lp_p{1,4}`` rows run the same LP workload on the
*process* backend (``run_spmd_processes``: real OS workers over
shared-memory CSR) and record real wall-clock throughput — their ratio
is the machine's actual parallel speedup, so interpret it against the
``cpu_cores`` meta field.  Results go to ``BENCH_lp.json`` at the repo
root.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py          # write baseline
    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py --check  # CI gate

``--check`` reads the committed ``BENCH_lp.json`` first, re-measures,
rewrites the file, and exits non-zero if any metric fell below half its
committed ops/sec (a >2x regression).  Wall-clock noise on shared CI
runners is far below 2x; a real algorithmic regression is not.

On top of the 2x catch-all, the chunked/frontier parallel-LP metrics
carry a tighter *engine-parity* gate: the backend-abstracted engine is
supposed to be a pure refactor of the LP hot path, so those ops/s must
stay within ``ENGINE_PARITY_TOLERANCE`` (10%) of the committed
baseline.  Best-of-``REPEATS`` timing keeps runner noise under that
bar; a parity failure means the shared driver added per-phase overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import fast_config
from repro.core.label_propagation import size_constrained_label_propagation
from repro.engine.kernels import DEFAULT_CHUNK_SIZE, SCAN_ENGINE
from repro.dist.dist_partitioner import parallel_partition
from repro.dist.dgraph import DistGraph, balanced_vtxdist
from repro.dist.dist_contraction import parallel_contract
from repro.dist.dist_lp import parallel_label_propagation
from repro.dist.runtime import run_spmd, run_spmd_processes
from repro.generators import grid_2d, rmat
from repro.perf.machine import MACHINE_A

RESULT_PATH = REPO_ROOT / "BENCH_lp.json"
PES = 4
#: PE count for the scaling rows (the "open p8" ROADMAP item): same LP
#: workloads at 8 simulated PEs, so the engine comparison is visible at
#: a second machine size
PES_8 = 8
REPEATS = 5  # best-of; 3 was not enough to tame shared-host noise
LP_ITERATIONS = 3
#: iteration count for the converged-regime LP metrics: cluster LP on
#: the headline instance settles after ~4 sweeps, so most of these
#: iterations exercise the near-converged steady state where the
#: frontier engine skips almost every rescan
LP_CONVERGED_ITERATIONS = 24
#: metrics covered by the tighter engine-parity gate: the vectorised
#: LP hot paths that the backend-abstracted engine drives end to end
ENGINE_PARITY_KEYS = (
    "par_lp_chunked_rmat15_p4",
    "par_lp_frontier_rmat15_p4",
    "par_lp_chunked_converged_rmat15_p4",
    "par_lp_frontier_converged_rmat15_p4",
    # adaptive rows are gated by ADAPTIVE_GATES below — a within-run
    # comparison against the best static engine, which host speed
    # cancels out of — so listing them here would only re-measure the
    # same rows against a noisier cross-run absolute baseline.
)
ENGINE_PARITY_TOLERANCE = 0.10
#: the adaptive engine's contract — ``>= max(full, frontier)`` in every
#: regime, within the same 10% noise bar.  Checked against the *current*
#: measurement (all three engines run back-to-back on the same host), so
#: runner speed cancels out; a failure means the controller picked the
#: wrong sweep or its bookkeeping costs more than it saves.
ADAPTIVE_GATES = {
    "adaptive_lp_rmat15_p4": (
        "par_lp_chunked_rmat15_p4",
        "par_lp_frontier_rmat15_p4",
    ),
    "adaptive_lp_converged_rmat15_p4": (
        "par_lp_chunked_converged_rmat15_p4",
        "par_lp_frontier_converged_rmat15_p4",
    ),
    "adaptive_lp_rmat15_p8": (
        "par_lp_chunked_rmat15_p8",
        "par_lp_frontier_rmat15_p8",
    ),
}


def _best(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall-clock of ``fn()`` (returns seconds)."""
    return min(fn() for _ in range(repeats))


def seq_lp_rate(graph, chunk: int) -> float:
    """Arc-visits/sec of one sequential cluster-mode LP run."""

    def run() -> float:
        rng = np.random.default_rng(0)
        t0 = time.perf_counter()
        size_constrained_label_propagation(
            graph, max(2, int(graph.vwgt.sum()) // 50), LP_ITERATIONS, rng,
            chunk_size=chunk,
        )
        return time.perf_counter() - t0

    return graph.num_arcs * LP_ITERATIONS / _best(run)


def par_lp_rate(graph, chunk: int, engine: str | None = None,
                pes: int = PES) -> float:
    """Arc-visits/sec of parallel cluster-mode LP at ``pes`` simulated PEs.

    Only the LP call is timed (per-rank, max across ranks via
    ``allreduce_max``) — DistGraph setup is not part of the hot path.
    The rate numerator is always the *full-sweep* arc count, so the
    frontier engine's skipped rescans show up as a higher rate.
    """

    def program(comm):
        dgraph = DistGraph.from_global(
            graph, balanced_vtxdist(graph.num_nodes, comm.size), comm.rank
        )
        init = dgraph.to_global(np.arange(dgraph.n_total, dtype=np.int64))
        t0 = time.perf_counter()
        parallel_label_propagation(
            dgraph, comm, init, 300, LP_ITERATIONS, mode="cluster",
            chunk_size=chunk, engine=engine,
        )
        return comm.allreduce_max(time.perf_counter() - t0)

    dt = _best(lambda: run_spmd(pes, program, seed=0).value)
    return graph.num_arcs * LP_ITERATIONS / dt


def _proc_lp_program(comm, graph):
    """Spawn-safe LP program for the process-backend rows.

    Module-level so spawn workers can re-import it; the graph arrives
    through the shared-memory CSR segments, not the pickle stream.
    """
    dgraph = DistGraph.from_global(
        graph, balanced_vtxdist(graph.num_nodes, comm.size), comm.rank
    )
    init = dgraph.to_global(np.arange(dgraph.n_total, dtype=np.int64))
    t0 = time.perf_counter()
    parallel_label_propagation(
        dgraph, comm, init, 300, LP_ITERATIONS, mode="cluster",
        chunk_size=DEFAULT_CHUNK_SIZE, engine="frontier",
    )
    return comm.allreduce_max(time.perf_counter() - t0)


def proc_lp_rate(graph, pes: int) -> float:
    """Real wall-clock arc-visits/sec of cluster LP on the process backend.

    Times only the LP region inside the workers (max across ranks), so
    spawn + import + shm setup — a fixed ~seconds overhead per run — is
    excluded and the rate measures steady-state throughput.  Unlike
    every other ``par_*`` metric the clock here is *real* parallelism:
    the ranks are OS processes, so on a multi-core host the p=4 rate
    exceeds the p=1 rate.  On a single-core host (see ``cpu_cores`` in
    the meta block) the ranks time-slice one CPU and the p=4/p=1 ratio
    sits below 1, bounded by the queue-collective overhead.
    """

    def run() -> float:
        return run_spmd_processes(pes, _proc_lp_program, graph=graph, seed=0).value

    return graph.num_arcs * LP_ITERATIONS / _best(run)


def par_lp_converged_rate(graph, engine: str, pes: int = PES) -> float:
    """Equivalent-sweep rate of LP run into its converged regime.

    Unconstrained cluster LP (the size bound is the total node weight,
    so capping never churns) settles after a few sweeps; the remaining
    iterations rescan a near-static labelling.  The numerator counts
    full-sweep arc visits per iteration — the TEPS-style convention —
    so an engine that *skips* converged rescans shows a higher rate,
    which is precisely the frontier engine's value proposition.
    """

    def program(comm):
        dgraph = DistGraph.from_global(
            graph, balanced_vtxdist(graph.num_nodes, comm.size), comm.rank
        )
        init = dgraph.to_global(np.arange(dgraph.n_total, dtype=np.int64))
        t0 = time.perf_counter()
        parallel_label_propagation(
            dgraph, comm, init, int(graph.vwgt.sum()),
            LP_CONVERGED_ITERATIONS, mode="cluster",
            chunk_size=DEFAULT_CHUNK_SIZE, engine=engine,
        )
        return comm.allreduce_max(time.perf_counter() - t0)

    dt = _best(lambda: run_spmd(pes, program, seed=0).value)
    return graph.num_arcs * LP_CONVERGED_ITERATIONS / dt


def frontier_stats(graph) -> dict:
    """One untimed traced LP run: frontier fractions + exchange bytes.

    Informational (not part of the ``--check`` gate): per-iteration
    ``frontier_frac`` from the ``lp.iteration`` spans, plus the
    ``alltoall[lp.labels]`` payload bytes under the delta and the dense
    wire formats.
    """
    from repro.obsv.tracer import TRACER

    def program(comm, delta):
        dgraph = DistGraph.from_global(
            graph, balanced_vtxdist(graph.num_nodes, comm.size), comm.rank
        )
        init = dgraph.to_global(np.arange(dgraph.n_total, dtype=np.int64))
        parallel_label_propagation(
            dgraph, comm, init, 300, LP_ITERATIONS, mode="cluster",
            chunk_size=DEFAULT_CHUNK_SIZE, engine="frontier",
            delta_exchange=delta,
        )
        return None

    def lp_bytes(result) -> int:
        return sum(
            s.per_op.get("alltoall[lp.labels]", (0, 0))[1]
            for s in result.stats
        )

    TRACER.enable(reset=True)
    try:
        delta_run = run_spmd(PES, program, True, seed=0)
        by_rank: dict[int, list[float]] = {}
        for rec in TRACER.snapshot():
            attrs = rec.get("attrs", {})
            if rec.get("name") == "lp.iteration" and "frontier_frac" in attrs:
                by_rank.setdefault(rec.get("rank", 0), []).append(
                    attrs["frontier_frac"]
                )
    finally:
        TRACER.disable()
    dense_run = run_spmd(PES, program, False, seed=0)

    rounds = max((len(v) for v in by_rank.values()), default=0)
    per_iter = [
        round(float(np.mean([v[i] for v in by_rank.values() if len(v) > i])), 4)
        for i in range(rounds)
    ]
    return {
        "frontier_frac_per_iteration": per_iter,
        "lp_exchange_bytes_delta": lp_bytes(delta_run),
        "lp_exchange_bytes_dense": lp_bytes(dense_run),
    }


def halo_rate(graph, rounds: int = 20) -> float:
    """Ghost values exchanged/sec at ``PES`` simulated PEs."""

    def program(comm):
        dgraph = DistGraph.from_global(
            graph, balanced_vtxdist(graph.num_nodes, comm.size), comm.rank
        )
        values = np.arange(dgraph.n_total, dtype=np.int64)
        t0 = time.perf_counter()
        for _ in range(rounds):
            dgraph.halo_exchange(comm, values)
        dt = comm.allreduce_max(time.perf_counter() - t0)
        return dt, comm.allreduce(dgraph.n_ghost)

    dt, total_ghosts = _best_pair(program)
    return total_ghosts * rounds / dt


def contract_rate(graph) -> float:
    """Fine arcs contracted/sec by ``parallel_contract`` at ``PES`` PEs."""
    clustering = np.random.default_rng(3).integers(
        0, max(2, graph.num_nodes // 50), graph.num_nodes
    )

    def program(comm):
        dgraph = DistGraph.from_global(
            graph, balanced_vtxdist(graph.num_nodes, comm.size), comm.rank
        )
        labels = np.zeros(dgraph.n_total, dtype=np.int64)
        labels[: dgraph.n_local] = clustering[
            dgraph.first : dgraph.first + dgraph.n_local
        ]
        dgraph.halo_exchange(comm, labels)
        t0 = time.perf_counter()
        parallel_contract(dgraph, comm, labels)
        return comm.allreduce_max(time.perf_counter() - t0), 0

    dt, _ = _best_pair(program)
    return graph.num_arcs / dt


def _best_pair(program) -> tuple[float, int]:
    best = None
    for _ in range(REPEATS):
        dt, extra = run_spmd(PES, program, seed=0).value
        if best is None or dt < best[0]:
            best = (dt, extra)
    return best


def phase_breakdown() -> dict:
    """Simulated seconds per pipeline phase of one fast-config partition.

    Informational only — the ``--check`` gate compares ``metrics`` keys
    exclusively, so this section can evolve without invalidating the
    committed ops/sec baseline.
    """
    graph = rmat(12, seed=1)
    res = parallel_partition(
        graph, fast_config(k=4), num_pes=PES, machine=MACHINE_A, seed=0
    )
    total = sum(res.phase_times.values()) or 1.0
    return {
        "instance": "rmat12",
        "pes": PES,
        "cut": int(res.cut),
        "sim_time_s": round(res.sim_time, 6),
        "phases_sim_s": {k: round(v, 6) for k, v in res.phase_times.items()},
        "phases_share": {k: round(v / total, 3) for k, v in res.phase_times.items()},
    }


#: leg program for the out-of-core comparison: each leg runs in its own
#: process because VmHWM is a process-lifetime high-water mark (this
#: bench process has already held rmat15 graphs by the time it runs)
_OOCORE_LEG = """\
import json, sys, time
from repro.api import partition_oocore
from repro.graph import open_sharded
from repro.perf.rss import memory_sample

mode, shard_dir, iterations = sys.argv[1], sys.argv[2], int(sys.argv[3])
graph = open_sharded(shard_dir)
if mode == "memory":
    graph = graph.materialized()
t0 = time.perf_counter()
result = partition_oocore(graph, 8, seed=3, iterations=iterations)
wall = time.perf_counter() - t0
print(json.dumps({
    "wall_s": wall,
    "peak_rss_bytes": memory_sample()["peak_rss_bytes"],
    "cut": int(result.quality.cut),
    "arcs_read": int(graph.store.stats().arcs_read),
    "labels_sum": int(result.partition.sum()),
}))
"""


def oocore_breakdown() -> dict:
    """Out-of-core vs in-memory flat SCLP on a sharded scale-18 RMAT.

    Informational (not part of the ``--check`` gate): arc throughput and
    peak RSS of the same semi-external program on the two stores.  The
    interesting numbers are ``peak_rss_ratio`` (how much memory the
    ``MmapShardStore`` actually saves) and ``slowdown`` (what streaming
    the arcs from disk costs); the identical cuts are the equivalence
    contract, test-enforced at scale 21.
    """
    import subprocess
    import tempfile

    from repro.generators import rmat_shards

    iterations = 4
    with tempfile.TemporaryDirectory() as tmp:
        shard_dir = os.path.join(tmp, "rmat18.shards")
        rmat_shards(shard_dir, scale=18, edge_factor=8, seed=7)
        legs = {}
        for mode in ("mmap", "memory"):
            proc = subprocess.run(
                [sys.executable, "-c", _OOCORE_LEG, mode, shard_dir,
                 str(iterations)],
                check=True, capture_output=True, text=True,
                env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            )
            legs[mode] = json.loads(proc.stdout)
    arcs = legs["mmap"]["arcs_read"]  # identical programs, same traffic
    return {
        "oocore_lp_rmat18": {
            "instance": "rmat18",
            "k": 8,
            "iterations": iterations,
            "mmap_arc_reads_per_s": round(arcs / legs["mmap"]["wall_s"], 1),
            "memory_arc_reads_per_s": round(arcs / legs["memory"]["wall_s"], 1),
            "mmap_peak_rss_bytes": legs["mmap"]["peak_rss_bytes"],
            "memory_peak_rss_bytes": legs["memory"]["peak_rss_bytes"],
            "peak_rss_ratio": round(
                legs["mmap"]["peak_rss_bytes"]
                / legs["memory"]["peak_rss_bytes"], 3,
            ),
            "slowdown": round(
                legs["mmap"]["wall_s"] / legs["memory"]["wall_s"], 2
            ),
            "cut": legs["mmap"]["cut"],
            "labels_identical": (
                legs["mmap"]["cut"] == legs["memory"]["cut"]
                and legs["mmap"]["labels_sum"] == legs["memory"]["labels_sum"]
            ),
        },
    }


def measure() -> dict:
    instances = {
        "rmat": rmat(13, seed=1),
        "mesh": grid_2d(91, 91),
    }
    metrics: dict[str, float] = {}
    for name, graph in instances.items():
        metrics[f"seq_lp_scan_{name}"] = seq_lp_rate(graph, SCAN_ENGINE)
        metrics[f"seq_lp_chunked_{name}"] = seq_lp_rate(graph, DEFAULT_CHUNK_SIZE)
        metrics[f"halo_exchange_{name}"] = halo_rate(graph)
        metrics[f"contraction_{name}"] = contract_rate(graph)

    headline = rmat(15, seed=1)
    scan = par_lp_rate(headline, SCAN_ENGINE)
    chunked = par_lp_rate(headline, DEFAULT_CHUNK_SIZE, engine="full")
    frontier = par_lp_rate(headline, DEFAULT_CHUNK_SIZE, engine="frontier")
    adaptive = par_lp_rate(headline, DEFAULT_CHUNK_SIZE, engine="adaptive")
    metrics["par_lp_scan_rmat15_p4"] = scan
    metrics["par_lp_chunked_rmat15_p4"] = chunked
    metrics["par_lp_frontier_rmat15_p4"] = frontier
    metrics["adaptive_lp_rmat15_p4"] = adaptive

    conv_full = par_lp_converged_rate(headline, "full")
    conv_frontier = par_lp_converged_rate(headline, "frontier")
    conv_adaptive = par_lp_converged_rate(headline, "adaptive")
    metrics["par_lp_chunked_converged_rmat15_p4"] = conv_full
    metrics["par_lp_frontier_converged_rmat15_p4"] = conv_frontier
    metrics["adaptive_lp_converged_rmat15_p4"] = conv_adaptive

    # Scaling rows: the same 3-iteration workload at 8 simulated PEs.
    metrics["par_lp_chunked_rmat15_p8"] = par_lp_rate(
        headline, DEFAULT_CHUNK_SIZE, engine="full", pes=PES_8
    )
    metrics["par_lp_frontier_rmat15_p8"] = par_lp_rate(
        headline, DEFAULT_CHUNK_SIZE, engine="frontier", pes=PES_8
    )
    metrics["adaptive_lp_rmat15_p8"] = par_lp_rate(
        headline, DEFAULT_CHUNK_SIZE, engine="adaptive", pes=PES_8
    )

    proc_p1 = proc_lp_rate(headline, 1)
    proc_p4 = proc_lp_rate(headline, PES)
    metrics["proc_lp_p1"] = proc_p1
    metrics["proc_lp_p4"] = proc_p4

    return {
        "meta": {
            "unit": "ops/sec (arc-visits, ghost values, or fine arcs)",
            "pes": PES,
            "pes_scaling": PES_8,
            "repeats": REPEATS,
            "lp_iterations": LP_ITERATIONS,
            "lp_converged_iterations": LP_CONVERGED_ITERATIONS,
            "default_chunk_size": DEFAULT_CHUNK_SIZE,
            # The proc_lp_* rows measure real OS-process parallelism, so
            # their p4/p1 ratio is only meaningful relative to the cores
            # the benchmark host actually grants this process.
            "cpu_cores": len(os.sched_getaffinity(0)),
        },
        "metrics": {k: round(v, 1) for k, v in metrics.items()},
        "speedups": {
            "par_cluster_lp_rmat15_p4": round(chunked / scan, 2),
            "par_cluster_lp_frontier_vs_full_rmat15_p4": round(
                frontier / chunked, 2
            ),
            "par_cluster_lp_frontier_converged_vs_full_rmat15_p4": round(
                conv_frontier / conv_full, 2
            ),
            "adaptive_vs_best_static_rmat15_p4": round(
                adaptive / max(chunked, frontier), 2
            ),
            "adaptive_vs_best_static_converged_rmat15_p4": round(
                conv_adaptive / max(conv_full, conv_frontier), 2
            ),
            "proc_lp_wall_speedup_p4": round(proc_p4 / proc_p1, 2),
        },
        "frontier_metrics": frontier_stats(headline),
        "phase_metrics": phase_breakdown(),
        "oocore_metrics": oocore_breakdown(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed BENCH_lp.json; exit 1 on a "
             ">2x ops/sec regression anywhere, a >10% drop on the "
             "engine-parity LP metrics, or the adaptive engine falling "
             ">10% behind the best static engine in any regime",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.check:
        if not RESULT_PATH.exists():
            print(f"--check requires a committed baseline at {RESULT_PATH}")
            return 1
        baseline = json.loads(RESULT_PATH.read_text())

    report = measure()
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(k) for k in report["metrics"])
    for key, value in report["metrics"].items():
        line = f"{key:<{width}}  {value / 1e6:8.2f} M ops/s"
        if baseline is not None and key in baseline.get("metrics", {}):
            ref = baseline["metrics"][key]
            line += f"  (baseline {ref / 1e6:.2f}, x{value / ref:.2f})"
        print(line)
    speedup = report["speedups"]["par_cluster_lp_rmat15_p4"]
    print(f"parallel cluster LP chunked-vs-scan speedup: {speedup:.2f}x")
    print(f"wrote {RESULT_PATH}")

    if baseline is not None:
        ref_metrics = baseline.get("metrics", {})
        # Wall-clock "speedups" of the process backend on a single-core
        # host measure queue/scheduling overhead, not parallelism — the
        # recorded proc_lp_wall_speedup_p4 = 0.2x caveat.  When either
        # side of the comparison ran on one core, gating on those rows
        # would fail (or pass) for reasons unrelated to the code.
        cores_now = report["meta"].get("cpu_cores")
        cores_then = baseline.get("meta", {}).get("cpu_cores")
        skip_proc_rows = cores_now == 1 or cores_then == 1
        if skip_proc_rows:
            skipped = sorted(
                key for key in ref_metrics
                if key.startswith("proc_lp_") and key in report["metrics"]
            )
            if skipped:
                print(
                    "skipping process-backend wall-speedup gate for "
                    + ", ".join(skipped)
                    + f": recorded cpu_cores == 1 (baseline {cores_then}, "
                    f"current {cores_now}); single-core wall ratios measure "
                    "queue overhead, not parallel speedup"
                )
        regressed = [
            key
            for key, ref in ref_metrics.items()
            if key in report["metrics"] and report["metrics"][key] < ref / 2
            and not (skip_proc_rows and key.startswith("proc_lp_"))
        ]
        if regressed:
            print("REGRESSION (>2x below committed baseline): "
                  + ", ".join(regressed))
            return 1
        parity_floor = 1.0 - ENGINE_PARITY_TOLERANCE
        off_parity = [
            key
            for key in ENGINE_PARITY_KEYS
            if key in ref_metrics
            and key in report["metrics"]
            and report["metrics"][key] < ref_metrics[key] * parity_floor
        ]
        if off_parity:
            print(
                "ENGINE PARITY FAILURE (>"
                f"{ENGINE_PARITY_TOLERANCE:.0%} below committed baseline): "
                + ", ".join(off_parity)
            )
            return 1
        adaptive_floor = 1.0 - ENGINE_PARITY_TOLERANCE
        behind = []
        for adaptive_key, static_keys in ADAPTIVE_GATES.items():
            if adaptive_key not in report["metrics"]:
                continue
            best_static = max(
                report["metrics"][key]
                for key in static_keys
                if key in report["metrics"]
            )
            if report["metrics"][adaptive_key] < best_static * adaptive_floor:
                behind.append(adaptive_key)
        if behind:
            print(
                "ADAPTIVE ENGINE FAILURE (>"
                f"{ENGINE_PARITY_TOLERANCE:.0%} below the best static "
                "engine in the same run): " + ", ".join(behind)
            )
            return 1
        print(
            "check passed: no metric more than 2x below baseline; "
            "engine-parity LP metrics within "
            f"{ENGINE_PARITY_TOLERANCE:.0%}; adaptive >= best static "
            "engine in every regime"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
