"""Kernel microbenchmarks: throughput of the two O(n + m) hot paths.

Not a paper artifact — a performance-regression guard for the library's
kernels, in the spirit of the optimisation guides (measure first):

* the label-propagation scan (the irreducibly sequential per-node loop);
* the contraction group-by (pure vectorised NumPy).

Reported numbers are edges/second on a mid-sized web graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.label_propagation import label_propagation_clustering
from repro.generators import web_copy_graph
from repro.graph import contract


GRAPH = web_copy_graph(8192, out_degree=10, seed=0)


def test_label_propagation_throughput(benchmark):
    rng = np.random.default_rng(0)

    def run():
        return label_propagation_clustering(GRAPH, 64, 1, rng)

    labels = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = GRAPH.num_arcs / benchmark.stats.stats.mean
    print(f"\nLP scan: {rate / 1e6:.2f} M arc-visits/s "
          f"({GRAPH.num_arcs:,} arcs per round)")
    assert labels.shape == (GRAPH.num_nodes,)
    assert rate > 1e5  # regression guard: at least 0.1 M arcs/s


def test_contraction_throughput(benchmark):
    rng = np.random.default_rng(1)
    labels = rng.integers(0, GRAPH.num_nodes // 50, size=GRAPH.num_nodes)

    def run():
        return contract(GRAPH, labels)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = GRAPH.num_arcs / benchmark.stats.stats.mean
    print(f"\ncontract: {rate / 1e6:.2f} M arcs/s")
    assert result.coarse.num_nodes <= GRAPH.num_nodes // 50 + 1
    assert rate > 1e6  # vectorised kernel: at least 1 M arcs/s
