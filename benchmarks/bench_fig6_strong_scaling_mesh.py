"""E5 — Figure 6 (top & middle): strong scaling on delX / rggX, k = 16.

Fixed instances, PE count swept.  Paper observations reproduced here at
scaled size: total time falls with p while the graphs are large enough,
smaller instances flatten out early, and the ParMetis-like baseline is
faster per run on meshes but cuts more.
"""

from __future__ import annotations

from repro.bench import format_series, run_algorithm, write_report
from repro.generators import family_instance
from repro.perf import MACHINE_B

PES = (1, 2, 4, 8, 16)
K = 16
EXPONENTS = (11, 13)  # "small" and "large" members, paper uses 25..31


def run_figure() -> str:
    series: dict[str, dict] = {}
    for family in ("del", "rgg"):
        for exponent in EXPONENTS:
            name = f"{family}{exponent}"
            graph = family_instance(family, exponent, seed=0)
            fast_key = f"fast-{name}"
            pm_key = f"parmetis-{name}"
            series[fast_key] = {}
            series[pm_key] = {}
            for p in PES:
                fast = run_algorithm("fast", graph, name, k=K, num_pes=p,
                                     machine=MACHINE_B, seeds=1, sim_pes=p)
                series[fast_key][p] = fast.avg_time
                pm = run_algorithm("parmetis", graph, name, k=K, num_pes=p,
                                   machine=MACHINE_B, seeds=1)
                series[pm_key][p] = pm.avg_time

    table = format_series(
        "Figure 6 (top/middle): strong scaling on meshes — total simulated "
        "seconds, k=16, machine B", "p", series,
    )
    lines = [table]
    for family in ("del", "rgg"):
        big = f"fast-{family}{EXPONENTS[-1]}"
        t1, tp = series[big][PES[0]], series[big][PES[-1]]
        lines.append(
            f"  {family}{EXPONENTS[-1]}: fast speedup p={PES[0]} -> p={PES[-1]}: "
            f"{t1 / tp:.1f}x (paper: scaling continues while graphs are large enough)"
        )
    return "\n".join(lines)


def test_fig6_strong_scaling_mesh(run_once):
    report = run_once(run_figure)
    write_report("fig6_strong_scaling_mesh", report)
    assert "Figure 6" in report
