"""E2 — Table II: solution quality and time, k = 2, machine A.

Per instance: average cut, best cut, and average (simulated) running
time for the ParMetis-like baseline versus the fast and eco
configurations; ``*`` marks simulated out-of-memory at 32 PEs / 512 GB,
exactly the paper's failure criterion.  The summary block reports the
paper's headline aggregates next to ours:

* fast / eco cut reduction vs ParMetis over ParMetis-solvable instances
  (paper: 19.2 % / 27.4 %);
* the same over social/web instances only (paper: 38 % / 45 %);
* mesh-only behaviour (paper: fast ~3 % better but slower; eco ~12 %).
"""

from __future__ import annotations

from repro.bench import (
    format_table,
    geometric_mean,
    run_algorithm,
    write_report,
)
from repro.generators import INSTANCES, load_instance
from repro.perf import MACHINE_A

K = 2
ALGORITHMS = ("parmetis", "fast", "eco")


def run_table(k: int, title: str) -> str:
    per_instance: dict[str, dict] = {}
    for name in INSTANCES:
        graph = load_instance(name, seed=0)
        per_instance[name] = {
            algo: run_algorithm(
                algo, graph, name, k=k, num_pes=32, machine=MACHINE_A,
                enforce_memory=True,
            )
            for algo in ALGORITHMS
        }

    rows = []
    for name, results in per_instance.items():
        cells = [name, INSTANCES[name].kind]
        for algo in ALGORITHMS:
            cells.extend(results[algo].cells())
        rows.append(cells)

    header = ["graph", "type"]
    for algo in ALGORITHMS:
        header += [f"{algo} avg", f"{algo} best", f"{algo} t[ms]"]
    table = format_table(title, header, rows)

    # ------------------------------------------------------------------
    # Headline aggregates (geometric means, as in the paper)
    # ------------------------------------------------------------------
    def reduction(algo: str, kinds: tuple[str, ...]) -> tuple[float, int]:
        ratios = []
        for name, results in per_instance.items():
            if INSTANCES[name].kind not in kinds:
                continue
            base = results["parmetis"]
            ours = results[algo]
            if base.oom or ours.oom or not base.avg_cut or not ours.avg_cut:
                continue
            ratios.append(ours.avg_cut / base.avg_cut)
        if not ratios:
            return 0.0, 0
        return (1.0 - geometric_mean(ratios)) * 100.0, len(ratios)

    lines = [table, "Summary (vs ParMetis-like, ParMetis-solvable instances only; "
                    "positive = we cut less):"]
    paper = {
        ("fast", ("S", "M")): "19.2 %",
        ("eco", ("S", "M")): "27.4 %",
        ("fast", ("S",)): "38 %",
        ("eco", ("S",)): "45 %",
    }
    for algo in ("fast", "eco"):
        for kinds, label in ((("S", "M"), "all"), (("S",), "social/web"), (("M",), "mesh")):
            cut_red, count = reduction(algo, kinds)
            ref = paper.get((algo, kinds), "-")
            lines.append(
                f"  {algo:4s} cut reduction vs ParMetis on {label}: {cut_red:+6.1f} % "
                f"({count} instances; paper: {ref})"
            )
    oom = [name for name, r in per_instance.items() if r["parmetis"].oom]
    lines.append(f"  ParMetis out-of-memory (\"*\"): {', '.join(oom) or 'none'} "
                 f"(paper: arabic-2005, sk-2005, uk-2007)")
    return "\n".join(lines)


def test_table2_quality_k2(run_once):
    report = run_once(run_table, K, "Table II: k=2, 32 PEs of machine A "
                                   "(ParHIP simulated on 8 PEs; quality is PE-insensitive)")
    write_report("table2_quality_k2", report)
    assert "Summary" in report
