"""A3 — ablation: evolutionary initial partitioning on the coarsest graph.

What does KaFFPaE buy over a single engine run?  Compare, on the same
coarsest-level task: (a) one KaFFPa run, (b) KaFFPaE with an initial
population only (the fast configuration's budget) and (c) KaFFPaE with
optimisation rounds (eco's budget).  Run on the replicated coarsest
graphs the real pipeline produces.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, write_report
from repro.core import coarsen, fast_config
from repro.dist import run_spmd
from repro.evolutionary import KaffpaeOptions, kaffpae_partition
from repro.kaffpa import kaffpa_partition
from repro.generators import load_instance
from repro.metrics import edge_cut


def run_experiment() -> str:
    K = 8
    rows = []
    for name in ("uk-2002", "eu-2005"):
        graph = load_instance(name, seed=0)
        # stop coarsening early so the coarsest problem is rich enough for
        # the EA to matter (the paper's coarsest has 10 000 * k nodes)
        config = fast_config(k=K, social=True, coarsest_nodes_per_block=60)
        hierarchy = coarsen(graph, config, np.random.default_rng(0), cluster_factor=14.0)
        coarsest = hierarchy.coarsest

        single = np.mean([
            edge_cut(coarsest, kaffpa_partition(coarsest, K, 0.03,
                                                np.random.default_rng(seed)))
            for seed in range(3)
        ])

        def ea(rounds: int, seed: int) -> int:
            def program(comm):
                return kaffpae_partition(
                    comm, coarsest, K, 0.03,
                    KaffpaeOptions(population_size=8, rounds=rounds),
                )
            result = run_spmd(4, program, seed=seed)
            return edge_cut(coarsest, result.value)

        pop_only = np.mean([ea(0, seed) for seed in range(2)])
        with_rounds = np.mean([ea(12, seed) for seed in range(2)])
        rows.append([
            name, f"{coarsest.num_nodes:,}",
            f"{single:,.0f}", f"{pop_only:,.0f}", f"{with_rounds:,.0f}",
        ])
    table = format_table(
        f"Ablation A3: coarsest-level partitioning (cut on the coarsest graph, k={K})",
        ["graph", "coarsest n", "single KaFFPa", "KaFFPaE pop-only (fast)",
         "KaFFPaE +12 rounds (eco)"],
        rows,
    )
    return table + (
        "Expected: population-best <= single run; combine/mutation rounds "
        "improve further (the eco configuration's quality source).\n"
    )


def test_ablation_evolution(run_once):
    report = run_once(run_experiment)
    write_report("ablation_evolution", report)
    assert "KaFFPaE" in report
