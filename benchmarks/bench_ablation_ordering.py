"""A1 — ablation: degree-ascending vs random node order in coarsening LP.

Paper Section III-A: visiting nodes in increasing-degree order during
coarsening improves solution quality and running time, because low-degree
nodes settle into clusters before the hubs pick theirs.  This ablation
clusters social instances both ways and compares (a) the modularity of
the resulting clustering and (b) the end-to-end cut when the whole
sequential partitioner runs with each ordering.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, write_report
from repro.core.label_propagation import label_propagation_clustering
from repro.generators import load_instance
from repro.graph import max_block_weight_bound
from repro.metrics import modularity


def run_experiment() -> str:
    from repro.core import fast_config, sequential_partition

    rows = []
    for name in ("uk-2002", "eu-2005", "amazon"):
        graph = load_instance(name, seed=0)
        bound = max(1, max_block_weight_bound(graph, 2, 0.03) // 14)
        entry = [name]
        for ordering in ("degree", "random"):
            mods = []
            clusters = []
            for seed in range(3):
                labels = label_propagation_clustering(
                    graph, bound, 3, np.random.default_rng(seed), ordering=ordering
                )
                mods.append(modularity(graph, labels))
                clusters.append(len(np.unique(labels)))
            config = fast_config(k=2, social=True, coarsening_ordering=ordering)
            cuts = [sequential_partition(graph, config, seed=s).cut for s in range(2)]
            entry.extend([
                f"{np.mean(mods):.3f}",
                f"{np.mean(clusters):,.0f}",
                f"{np.mean(cuts):,.0f}",
            ])
        rows.append(entry)
    table = format_table(
        "Ablation A1: node ordering in coarsening label propagation (3 iters, f=14)",
        ["graph", "deg mod", "deg #clusters", "deg cut",
         "rnd mod", "rnd #clusters", "rnd cut"],
        rows,
    )
    return table + (
        "Paper claim: degree-ascending ordering yields better clusterings and "
        "end-to-end quality than random order (at our scaled sizes the two are "
        "within a few percent; the advantage is larger at the paper's scale).\n"
    )


def test_ablation_ordering(run_once):
    report = run_once(run_experiment)
    write_report("ablation_ordering", report)
    assert "deg mod" in report
