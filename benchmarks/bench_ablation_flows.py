"""A5 — ablation: flow-based refinement in the evolutionary engine.

KaHIP's KaFFPa owes part of its quality to flow-based methods (§II-C).
This ablation toggles flows inside the coarsest-level engine on the
hardest configuration for this reproduction — k = 32 on a mesh — where
the coarsest problem is lumpy and LP-only refinement leaves quality on
the table (see EXPERIMENTS.md, E3).
"""

from __future__ import annotations

from repro.bench import format_table, write_report
from repro.core import eco_config
from repro.dist import parallel_partition
from repro.generators import load_instance


def run_experiment() -> str:
    rows = []
    for name in ("rgg26", "del26"):
        graph = load_instance(name, seed=0)
        for flows in (False, True):
            cuts, imbs = [], []
            for seed in range(2):
                res = parallel_partition(
                    graph,
                    eco_config(k=32, social=False, flow_refinement=flows),
                    num_pes=8, seed=seed,
                )
                cuts.append(res.cut)
                imbs.append(res.imbalance)
            rows.append([
                name, "eco+flows" if flows else "eco",
                f"{sum(cuts) / len(cuts):,.0f}", f"{min(cuts):,}",
                f"{max(imbs):.2%}",
            ])
    table = format_table(
        "Ablation A5: flow-based refinement in the EA engine (k=32, 8 PEs)",
        ["graph", "config", "avg cut", "best cut", "max imbalance"],
        rows,
    )
    return table + (
        "Flows recover a large part of the k-way mesh gap at a strict 3 % "
        "balance (the ParMetis-like baseline relaxes balance to ~9 % on "
        "these instances).\n"
    )


def test_ablation_flows(run_once):
    report = run_once(run_experiment)
    write_report("ablation_flows", report)
    assert "eco+flows" in report
