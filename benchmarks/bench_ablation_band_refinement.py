"""A4 — ablation: band-restricted label-propagation refinement.

PT-Scotch reduces refinement cost by "considering only nodes close to
the boundary of the current partitioning" (paper §II-B).  This ablation
measures what the restriction costs/saves in our LP refinement: scan
volume (nodes visited) and final cut, full scan vs bands of distance
1–3, starting from a projected-quality partition.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table, write_report
from repro.core import label_propagation_refinement
from repro.core.label_propagation import band_nodes
from repro.generators import load_instance
from repro.graph import max_block_weight_bound
from repro.kaffpa import kaffpa_partition, KaffpaOptions
from repro.metrics import edge_cut


def run_experiment() -> str:
    rows = []
    for name in ("rgg26", "uk-2002"):
        graph = load_instance(name, seed=0)
        k = 8
        lmax = max_block_weight_bound(graph, k, 0.03)
        # a mediocre starting partition with a real boundary to clean up
        start = kaffpa_partition(
            graph, k, 0.03, np.random.default_rng(0),
            KaffpaOptions(coarsening="matching", refinement_passes=0,
                          initial_attempts=1),
        )
        start_cut = edge_cut(graph, start)
        configs = [("full", None), ("band-1", 1), ("band-2", 2), ("band-3", 3)]
        for label, distance in configs:
            cuts = []
            for seed in range(3):
                refined = label_propagation_refinement(
                    graph, start, lmax, 6, np.random.default_rng(seed),
                    band_distance=distance,
                )
                cuts.append(edge_cut(graph, refined))
            visited = (
                graph.num_nodes if distance is None
                else band_nodes(graph, start, distance).size
            )
            rows.append([
                name, label, f"{start_cut:,}", f"{np.mean(cuts):,.0f}",
                f"{visited:,}", f"{visited / graph.num_nodes:.0%}",
            ])
    table = format_table(
        "Ablation A4: band refinement (k=8, 6 LP iterations)",
        ["graph", "mode", "start cut", "refined cut", "nodes scanned", "scan frac"],
        rows,
    )
    return table + (
        "PT-Scotch's trade: a narrow band scans a fraction of the nodes at "
        "near-identical refined quality on mesh-like inputs; on web graphs "
        "the boundary itself is a large node fraction, shrinking the saving.\n"
    )


def test_ablation_band_refinement(run_once):
    report = run_once(run_experiment)
    write_report("ablation_band_refinement", report)
    assert "band-2" in report
