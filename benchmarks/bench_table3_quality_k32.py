"""E3 — Table III (appendix): solution quality and time, k = 32.

Identical protocol to Table II with 32 blocks.  Paper headline: fast and
eco cut 6.8 % / 16.1 % less than ParMetis overall, with the improvement
again concentrated on the social networks and web graphs; ParMetis
additionally relaxes balance (up to 6 % imbalance) on some instances.
"""

from __future__ import annotations

from repro.bench import format_table, geometric_mean, run_algorithm, write_report
from repro.generators import INSTANCES, load_instance
from repro.perf import MACHINE_A

K = 32
ALGORITHMS = ("parmetis", "fast", "eco")


def run_table() -> str:
    per_instance: dict[str, dict] = {}
    for name in INSTANCES:
        graph = load_instance(name, seed=0)
        per_instance[name] = {
            algo: run_algorithm(
                algo, graph, name, k=K, num_pes=32, machine=MACHINE_A,
                enforce_memory=True,
            )
            for algo in ALGORITHMS
        }

    rows = []
    imbalance_notes = []
    for name, results in per_instance.items():
        cells = [name, INSTANCES[name].kind]
        for algo in ALGORITHMS:
            cells.extend(results[algo].cells())
        rows.append(cells)
        pm = results["parmetis"]
        if not pm.oom and pm.avg_imbalance is not None and pm.avg_imbalance > 0.031:
            imbalance_notes.append(f"{name} ({pm.avg_imbalance:.1%})")

    header = ["graph", "type"]
    for algo in ALGORITHMS:
        header += [f"{algo} avg", f"{algo} best", f"{algo} t[ms]"]
    table = format_table("Table III: k=32, 32 PEs of machine A "
                         "(ParHIP simulated on 8 PEs)", header, rows)

    def reduction(algo: str, kinds: tuple[str, ...]) -> tuple[float, int]:
        ratios = []
        for name, results in per_instance.items():
            if INSTANCES[name].kind not in kinds:
                continue
            base, ours = results["parmetis"], results[algo]
            if base.oom or ours.oom or not base.avg_cut or not ours.avg_cut:
                continue
            ratios.append(ours.avg_cut / base.avg_cut)
        return ((1.0 - geometric_mean(ratios)) * 100.0, len(ratios)) if ratios else (0.0, 0)

    lines = [table, "Summary (positive = we cut less than ParMetis):"]
    paper = {("fast", ("S", "M")): "6.8 %", ("eco", ("S", "M")): "16.1 %"}
    for algo in ("fast", "eco"):
        for kinds, label in ((("S", "M"), "all"), (("S",), "social/web"), (("M",), "mesh")):
            red, count = reduction(algo, kinds)
            ref = paper.get((algo, kinds), "-")
            lines.append(f"  {algo:4s} cut reduction on {label}: {red:+6.1f} % "
                         f"({count} instances; paper: {ref})")
    lines.append("  ParMetis imbalance >3 % (paper: relaxes up to 6 %): "
                 + (", ".join(imbalance_notes) or "none"))
    oom = [name for name, r in per_instance.items() if r["parmetis"].oom]
    lines.append(f"  ParMetis out-of-memory (\"*\"): {', '.join(oom) or 'none'}")
    return "\n".join(lines)


def test_table3_quality_k32(run_once):
    report = run_once(run_table)
    write_report("table3_quality_k32", report)
    assert "Summary" in report
