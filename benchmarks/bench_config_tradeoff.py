"""E8 — configuration trade-off: minimal vs fast vs eco (Section V-A).

The system "gives the user a gradual choice to trade solution quality
for running time": minimal (1 V-cycle) is fastest, fast (2 V-cycles,
EA initial population only) in between, eco (5 V-cycles + EA rounds)
best quality.  One social and one mesh instance.
"""

from __future__ import annotations

from repro.bench import format_table, run_algorithm, write_report
from repro.generators import load_instance
from repro.perf import MACHINE_A

CONFIGS = ("minimal", "fast", "eco")


def run_experiment() -> str:
    rows = []
    for name in ("uk-2002", "rgg26"):
        graph = load_instance(name, seed=0)
        for algo in CONFIGS:
            row = run_algorithm(algo, graph, name, k=2, num_pes=8,
                                machine=MACHINE_A, seeds=2)
            rows.append([
                name, algo,
                f"{row.avg_cut:,.0f}", f"{row.best_cut:,}",
                f"{row.avg_time * 1e3:.2f}", f"{row.avg_imbalance:.2%}",
            ])
    table = format_table(
        "Configuration trade-off (k=2, 8 PEs, machine A)",
        ["graph", "config", "avg cut", "best cut", "t[ms]", "imbalance"],
        rows,
    )
    return table + (
        "Expected ordering per instance: time(minimal) < time(fast) < time(eco) "
        "and cut(eco) <= cut(fast) <= cut(minimal) up to seed noise.\n"
    )


def test_config_tradeoff(run_once):
    report = run_once(run_experiment)
    write_report("config_tradeoff", report)
    assert "eco" in report
