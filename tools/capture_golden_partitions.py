"""Capture seeded golden outputs for the engine refactor equivalence gate.

Runs every public entry point the backend-abstracted engine must keep
byte-identical — LP clustering/refinement, parallel LP, the sequential
multilevel cycle, and the full parallel partitioner — over a fixed grid
of generator instances, presets, and PE counts, and writes SHA-256
hashes of the resulting label arrays to
``tests/engine/golden_partitions.json``.

Run it from a tree whose behaviour is the reference (it was run once on
the pre-refactor tree to freeze the baselines); the test suite then
replays the grid and compares hashes.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import eco_config, fast_config, multilevel_partition  # noqa: E402
from repro.core.label_propagation import (  # noqa: E402
    label_propagation_clustering,
    label_propagation_refinement,
)
from repro.dist.dist_lp import parallel_label_propagation  # noqa: E402
from repro.dist.dist_partitioner import parallel_partition  # noqa: E402
from repro.dist.dgraph import DistGraph, balanced_vtxdist  # noqa: E402
from repro.dist.runtime import run_spmd  # noqa: E402
from repro.generators import barabasi_albert, rgg, rmat  # noqa: E402
from repro.graph.validation import max_block_weight_bound  # noqa: E402


def digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr, dtype=np.int64).tobytes()).hexdigest()


GRAPHS = {
    "rmat10": lambda: rmat(10, seed=1),
    "ba10": lambda: barabasi_albert(1024, 4, seed=2),
    "rgg10": lambda: rgg(10, seed=3),
}

CONFIGS = {"fast": fast_config, "eco": eco_config}


def lp_goldens(out: dict) -> None:
    for gname, make in GRAPHS.items():
        g = make()
        lmax = max_block_weight_bound(g, 4, 0.03)
        for chunk, engine in [(0, None), (1, None), (64, "full"), (64, "frontier")]:
            rng = np.random.default_rng(7)
            labels = label_propagation_clustering(
                g, max_cluster_weight=max(2, lmax // 10), iterations=3, rng=rng,
                chunk_size=chunk, engine=engine,
            )
            out[f"lp_cluster/{gname}/chunk{chunk}/{engine or 'auto'}"] = digest(labels)
            rng = np.random.default_rng(11)
            part = rng.integers(0, 4, size=g.num_nodes)
            rng2 = np.random.default_rng(13)
            refined = label_propagation_refinement(
                g, part, lmax, iterations=4, rng=rng2,
                chunk_size=chunk, engine=engine,
            )
            out[f"lp_refine/{gname}/chunk{chunk}/{engine or 'auto'}"] = digest(refined)
        # band refinement (scan-only variant)
        rng = np.random.default_rng(17)
        part = rng.integers(0, 4, size=g.num_nodes)
        rng2 = np.random.default_rng(19)
        banded = label_propagation_refinement(
            g, part, lmax, iterations=3, rng=rng2, band_distance=2
        )
        out[f"lp_band/{gname}"] = digest(banded)


def parallel_lp_goldens(out: dict) -> None:
    def program(comm, graph, mode, k, chunk, engine):
        vtxdist = balanced_vtxdist(graph.num_nodes, comm.size)
        dg = DistGraph.from_global(graph, vtxdist, comm.rank)
        lmax = max_block_weight_bound(graph, 4, 0.03)
        if mode == "cluster":
            labels = dg.to_global(np.arange(dg.n_total, dtype=np.int64))
            res = parallel_label_propagation(
                dg, comm, labels, max(2, lmax // 10), 3,
                mode="cluster", chunk_size=chunk, engine=engine,
            )
        else:
            part_rng = np.random.default_rng(23)
            full = part_rng.integers(0, k, size=graph.num_nodes).astype(np.int64)
            labels = np.zeros(dg.n_total, dtype=np.int64)
            labels[: dg.n_local] = full[dg.first : dg.first + dg.n_local]
            dg.halo_exchange(comm, labels)
            res = parallel_label_propagation(
                dg, comm, labels, lmax, 4, mode="refine", k=k,
                chunk_size=chunk, engine=engine,
            )
        return dg.gather_global(comm, res[: dg.n_local])

    for gname, make in GRAPHS.items():
        g = make()
        for p in (1, 4):
            for chunk, engine in [(0, None), (1, None), (64, "full"), (64, "frontier")]:
                for mode in ("cluster", "refine"):
                    res = run_spmd(p, program, g, mode, 4, chunk, engine, seed=5)
                    out[f"par_lp_{mode}/{gname}/p{p}/chunk{chunk}/{engine or 'auto'}"] = (
                        digest(res.value)
                    )


def multilevel_goldens(out: dict) -> None:
    for gname, make in GRAPHS.items():
        g = make()
        for cname, cfg in CONFIGS.items():
            config = cfg(k=4)
            rng = np.random.default_rng(29)
            part = multilevel_partition(g, config, rng)
            out[f"multilevel/{gname}/{cname}"] = digest(part)


def parallel_partition_goldens(out: dict) -> None:
    for gname, make in GRAPHS.items():
        g = make()
        for cname, cfg in CONFIGS.items():
            for p in (1, 4):
                res = parallel_partition(g, cfg(k=4), num_pes=p, seed=31)
                out[f"parallel/{gname}/{cname}/p{p}"] = digest(res.partition)
                out[f"parallel_cut/{gname}/{cname}/p{p}"] = int(res.cut)


def main() -> None:
    out: dict = {}
    lp_goldens(out)
    parallel_lp_goldens(out)
    multilevel_goldens(out)
    parallel_partition_goldens(out)
    dest = Path(__file__).resolve().parents[1] / "tests" / "engine" / "golden_partitions.json"
    dest.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(out)} goldens to {dest}")


if __name__ == "__main__":
    main()
